// Package p4c is the mini-language front end: it parses P4-like pseudocode
// (the same surface syntax ir.Program.Format renders) into the IR. This is
// the repository's analog of the paper's P4→C translation step — programs
// can be written as text, versioned, and loaded by the CLI, and
// Format/Parse round-trip.
package p4c

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single or multi-char punctuation
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// multi-char operators, longest first.
var operators = []string{
	"&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "->", "..",
	"{", "}", "(", ")", "[", "]", ";", ",", "=", "<", ">", "+", "-", "*",
	"%", "&", "|", "^", "!", ":", ".",
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, line: l.line, col: l.col})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if !l.lexOperator() {
				return nil, fmt.Errorf("p4c: line %d:%d: unexpected character %q", l.line, l.col, c)
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() error {
	line, col := l.line, l.col
	l.advance(1) // opening quote
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		if l.src[l.pos] == '\n' {
			return fmt.Errorf("p4c: line %d:%d: unterminated string", line, col)
		}
		l.advance(1)
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("p4c: line %d:%d: unterminated string", line, col)
	}
	text := l.src[start:l.pos]
	l.advance(1) // closing quote
	l.emit(token{kind: tokString, text: text, line: line, col: col})
	return nil
}

func (l *lexer) lexNumber() {
	line, col := l.line, l.col
	start := l.pos
	// Hex literals.
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.advance(2)
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.advance(1)
		}
	} else {
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.advance(1)
		}
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col})
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) lexIdent() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.advance(1)
		} else {
			break
		}
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col})
}

func (l *lexer) lexOperator() bool {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			line, col := l.line, l.col
			l.advance(len(op))
			l.emit(token{kind: tokPunct, text: op, line: line, col: col})
			return true
		}
	}
	return false
}
