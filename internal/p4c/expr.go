package p4c

import (
	"strconv"
	"strings"

	"repro/internal/ir"
)

// ---- expressions ----
//
// expr    := term { binop term }        (left-assoc, single precedence tier;
//                                        Format emits full parentheses)
// term    := number | pkt.f | reg.r | meta.m | hashN(args)[%mod] | ( expr )

var binOps = map[string]ir.BinOp{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor,
	"%": ir.OpMod, "<<": ir.OpShl, ">>": ir.OpShr,
}

func (p *parser) parseExpr() (ir.Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := binOps[p.peek().text]
		if !ok || p.peek().kind != tokPunct {
			return left, nil
		}
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = ir.Bin{Op: op, A: left, B: right}
	}
}

func (p *parser) parseTerm() (ir.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		return ir.C(v), nil
	case t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.kind == tokIdent:
		name := p.next().text
		switch name {
		case "pkt":
			if err := p.expect("."); err != nil {
				return nil, err
			}
			f, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ir.F(f), nil
		case "reg":
			if err := p.expect("."); err != nil {
				return nil, err
			}
			r, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ir.R(r), nil
		case "meta":
			if err := p.expect("."); err != nil {
				return nil, err
			}
			m, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ir.M(m), nil
		}
		if strings.HasPrefix(name, "hash") {
			return p.parseHashExpr(name)
		}
		return nil, p.errf("unknown expression head %q", name)
	}
	return nil, p.errf("expected expression")
}

// parseHashExpr handles hashN(args)[%mod].
func (p *parser) parseHashExpr(head string) (ir.Expr, error) {
	seed, err := strconv.ParseUint(head[len("hash"):], 10, 32)
	if err != nil {
		return nil, p.errf("bad hash seed in %q", head)
	}
	args, err := p.parseExprParenList()
	if err != nil {
		return nil, err
	}
	h := ir.HashExpr{Seed: uint32(seed), Args: args}
	// A '%' immediately followed by a number literal is the hash modulus;
	// '%' followed by anything else is the binary mod operator and is left
	// for parseExpr's loop.
	if p.peek().text == "%" && p.peekAhead(1).kind == tokNumber {
		p.next()
		mod, err := p.number()
		if err != nil {
			return nil, err
		}
		h.Mod = mod
	}
	return h, nil
}

// ---- conditions ----
//
// cond      := condTerm { ("&&" | "||") condTerm }
// condTerm  := "!" "(" cond ")" | "(" cond ")" | expr cmpop expr
//
// A leading "(" is ambiguous between a grouped condition and a
// parenthesized expression opening a comparison; the parser backtracks.

var cmpOps = map[string]ir.CmpOp{
	"==": ir.CmpEq, "!=": ir.CmpNe, "<": ir.CmpLt,
	"<=": ir.CmpLe, ">": ir.CmpGt, ">=": ir.CmpGe,
}

func (p *parser) parseCmpOp() (ir.CmpOp, error) {
	if op, ok := cmpOps[p.peek().text]; ok && p.peek().kind == tokPunct {
		p.next()
		return op, nil
	}
	return 0, p.errf("expected comparison operator")
}

func (p *parser) parseCond() (ir.Cond, error) {
	left, err := p.parseCondTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().text {
		case "&&":
			p.next()
			right, err := p.parseCondTerm()
			if err != nil {
				return nil, err
			}
			left = ir.And(left, right)
		case "||":
			p.next()
			right, err := p.parseCondTerm()
			if err != nil {
				return nil, err
			}
			left = ir.Or(left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseCondTerm() (ir.Cond, error) {
	if p.peek().text == "!" {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return ir.Neg(inner), nil
	}
	if p.peek().text == "(" {
		// Try a grouped condition first; backtrack to a comparison whose
		// left side happens to be parenthesized.
		mark := p.save()
		p.next()
		if inner, err := p.parseCond(); err == nil {
			if p.accept(")") {
				// Grouped condition — unless a comparison operator
				// follows, which means "(expr)" was an expression.
				if _, isCmp := cmpOps[p.peek().text]; !isCmp {
					return inner, nil
				}
			}
		}
		p.restore(mark)
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (ir.Cond, error) {
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return ir.Cmp{Op: op, A: a, B: b}, nil
}
