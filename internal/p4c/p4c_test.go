package p4c

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/programs"
	"repro/internal/randprog"
	"repro/internal/trace"
)

const counterSrc = `
// counter.p4: count TCP and UDP packets, mirror every 32nd of each kind.
program counter {
  register tcp_cnt : 32;
  register udp_cnt : 32;
  apply {
    if (pkt.proto == 6)
      block "tcp" {
        reg.tcp_cnt = (reg.tcp_cnt + 1);
        if (reg.tcp_cnt >= 32)
          block "tcp_sample" { mirror(7); reg.tcp_cnt = 0; }
        else
          block "tcp_fwd" { forward(1); }
      }
    else
      block "udp" {
        reg.udp_cnt = (reg.udp_cnt + 1);
        if (reg.udp_cnt >= 32)
          block "udp_sample" { mirror(7); reg.udp_cnt = 0; }
        else
          block "udp_fwd" { forward(2); }
      }
  }
}
`

func TestParseCounter(t *testing.T) {
	prog, err := Parse(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "counter" {
		t.Fatalf("name = %q", prog.Name)
	}
	if len(prog.Regs) != 2 {
		t.Fatalf("regs = %d", len(prog.Regs))
	}
	if prog.NodeByLabel("tcp_sample") == nil {
		t.Fatal("tcp_sample block missing")
	}
	// The parsed program must behave identically to the builder version.
	builder := programs.Counter(32)
	swA := dut.New(prog, dut.Config{})
	swB := dut.New(builder, dut.Config{})
	tr := trace.Generate(trace.GenOptions{Seed: 3, Packets: 3000})
	var mA, mB int
	for i := range tr.Packets {
		mA += swA.Process(&tr.Packets[i]).Mirrors
		mB += swB.Process(&tr.Packets[i]).Mirrors
	}
	if mA != mB || mA == 0 {
		t.Fatalf("parsed (%d mirrors) and builder (%d) programs disagree", mA, mB)
	}
}

func TestParseDataStructures(t *testing.T) {
	src := `
program stores {
  field key : 32;
  hash_table flows[1024] seed 5;
  bloom seen[4096] hashes 3;
  sketch cnt[3x2048];
  register_array paths[4] : 8;
  register rr : 8;
  apply {
    access flows(pkt.src_ip, pkt.dst_ip) write 1 inc into meta.c {
      on empty -> block "fresh" { forward(1); }
      on hit -> block "known" { forward(1); }
      on collide -> block "clash" { recirculate(); }
    }
    bloom_test seen(pkt.src_ip) insert {
      on hit -> block "bf_hit" { noop(); }
      on miss -> block "bf_miss" { to_cpu(); }
    }
    sketch_update cnt(pkt.src_ip) by 1 into meta.est;
    sketch_if cnt(pkt.src_ip) >= 100 {
      on true -> block "heavy" { mirror(7); }
      on false -> block "light" { noop(); }
    }
    meta.bp = paths[reg.rr];
    paths[reg.rr] = 9;
    reg.rr = ((reg.rr + 1) % 4);
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.HashTables) != 1 || prog.HashTables[0].Size != 1024 || prog.HashTables[0].Seed != 5 {
		t.Fatalf("hash table decl wrong: %+v", prog.HashTables)
	}
	if len(prog.Blooms) != 1 || prog.Blooms[0].Hashes != 3 {
		t.Fatalf("bloom decl wrong: %+v", prog.Blooms)
	}
	if len(prog.Sketches) != 1 || prog.Sketches[0].Rows != 3 || prog.Sketches[0].Cols != 2048 {
		t.Fatalf("sketch decl wrong: %+v", prog.Sketches)
	}
	// Exercise it concretely.
	sw := dut.New(prog, dut.Config{})
	p := trace.Packet{SrcIP: 1, DstIP: 2}
	sw.Process(&p)
	if r := sw.Process(&p); r.CPUPunts != 0 {
		t.Fatal("second sighting should pass the bloom filter")
	}
}

func TestParseTables(t *testing.T) {
	src := `
program acl {
  table acl(pkt.dst_port, pkt.proto) disjoint {
    entry (22, 6) -> block "deny" { drop(); }
    entry (80..90, 6) -> block "web" { forward(2); }
    entry (*, 17) -> block "udp_any" { forward(3); }
    default -> block "cpu" { to_cpu(); }
  }
  apply { apply_table acl; }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := prog.Table("acl")
	if !ok || len(tbl.Entries) != 3 || !tbl.Disjoint {
		t.Fatalf("table parse wrong: %+v", tbl)
	}
	sw := dut.New(prog, dut.Config{})
	if !sw.Process(&trace.Packet{DstPort: 22, Proto: 6}).Dropped {
		t.Fatal("entry 1 not matched")
	}
	if r := sw.Process(&trace.Packet{DstPort: 85, Proto: 6}); r.OutPort != 2 {
		t.Fatal("range entry not matched")
	}
	if r := sw.Process(&trace.Packet{DstPort: 9, Proto: 17}); r.OutPort != 3 {
		t.Fatal("wildcard entry not matched")
	}
	if sw.Process(&trace.Packet{DstPort: 9, Proto: 6}).CPUPunts != 1 {
		t.Fatal("default not applied")
	}
}

func TestParseConditions(t *testing.T) {
	src := `
program conds {
  apply {
    if (((pkt.proto == 6) && (pkt.dst_port == 80)) || !(pkt.ttl > 10))
      block "yes" { forward(1); }
    else
      block "no" { drop(); }
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sw := dut.New(prog, dut.Config{})
	if sw.Process(&trace.Packet{Proto: 6, DstPort: 80, TTL: 64}).Dropped {
		t.Fatal("TCP/80 should match")
	}
	if sw.Process(&trace.Packet{Proto: 17, TTL: 5}).Dropped {
		t.Fatal("low TTL should match via negation")
	}
	if !sw.Process(&trace.Packet{Proto: 17, TTL: 64}).Dropped {
		t.Fatal("UDP high-TTL should not match")
	}
}

func TestParseHashExpr(t *testing.T) {
	src := `
program lb {
  apply {
    meta.h = hash7(pkt.src_ip, pkt.dst_ip)%4;
    forward(meta.h);
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sw := dut.New(prog, dut.Config{})
	r := sw.Process(&trace.Packet{SrcIP: 1, DstIP: 2})
	if r.OutPort >= 4 {
		t.Fatalf("hash mod not applied: port %d", r.OutPort)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`program {`,
		`program x { apply { } }extra`,
		`program x { register r 32; apply { } }`,
		`program x { apply { if pkt.proto == 6 drop(); } }`,
		`program x { apply { bogus_stmt; } }`,
		`program x { apply { forward(1) } }`, // missing semicolon
		`program x { apply { reg.missing = 1; } }`,
		`program x { apply { if (pkt.nofield == 1) drop(); } }`,
		`program x { apply { block "b" { drop(); } `, // unterminated
		`program x { field f : 99; apply { drop(); } }`,
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse/validate", i)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`foo 0x10 42 "str" == && -> // comment
next`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"foo", "0x10", "42", "str", "==", "&&", "->", "next"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex(`"unterminated`); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("stray character should error")
	}
}

// Round-trip: Format output of every zoo program parses back into an
// equivalent program (same labels, same concrete behaviour).
func TestRoundTripZoo(t *testing.T) {
	for _, m := range programs.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			orig := m.Build()
			text := orig.Format()
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("re-parse failed: %v\n--- source ---\n%s", err, text)
			}
			if len(back.Nodes()) != len(orig.Nodes()) {
				t.Fatalf("node count %d != %d", len(back.Nodes()), len(orig.Nodes()))
			}
			// Same behaviour on a shared traffic sample.
			swA := dut.New(orig, dut.Config{})
			swB := dut.New(back, dut.Config{})
			tr := trace.Generate(m.Workload(5))
			for i := 0; i < 1500 && i < tr.Len(); i++ {
				ra := swA.Process(&tr.Packets[i])
				rb := swB.Process(&tr.Packets[i])
				if ra != rb {
					t.Fatalf("packet %d diverges: %+v vs %+v", i, ra, rb)
				}
			}
		})
	}
}

func TestFormatContainsDeclarations(t *testing.T) {
	text := programs.NetCache().Format()
	for _, want := range []string{"hash_table cache[1024]", "sketch hotstats[3x2048]", "bloom reported[4096]", "field key : 32"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q", want)
		}
	}
	_ = ir.StdFields
}

// Property: Format -> Parse round-trips random programs to behaviourally
// identical ones.
func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		orig := randprog.Deterministic(rng, randprog.Options{WithTables: seed%2 == 0})
		back, err := Parse(orig.Format())
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v\n%s", seed, err, orig.Format())
		}
		swA := dut.New(orig, dut.Config{})
		swB := dut.New(back, dut.Config{})
		prng := rand.New(rand.NewSource(seed + 1000))
		for i := 0; i < 300; i++ {
			p := trace.Packet{
				Proto:   uint8(prng.Intn(256)),
				TTL:     uint8(prng.Intn(256)),
				DstPort: uint16(prng.Intn(2048)),
				SrcPort: uint16(prng.Intn(65536)),
				Len:     uint16(prng.Intn(1500)),
			}
			q := p.Clone()
			ra := swA.Process(&p)
			rb := swB.Process(&q)
			if ra != rb {
				t.Fatalf("seed %d packet %d: %+v vs %+v\n%s", seed, i, ra, rb, orig.Format())
			}
		}
	}
}
