package p4c

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Parse compiles mini-language source into a built ir.Program.
func Parse(src string) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after program")
	}
	return prog.Build()
}

// ParseUnvalidated compiles source like Parse but skips reference
// validation, so the analysis verifier can report every problem in a
// malformed program as a structured diagnostic instead of failing at
// Build's first error. The result must not be executed.
func ParseUnvalidated(src string) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after program")
	}
	return prog.BuildUnvalidated()
}

// MustParse is Parse that panics on error (for static program text).
func MustParse(src string) *ir.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("p4c: line %d:%d: %s (at %s)", t.line, t.col, fmt.Sprintf(format, args...), t)
}

func (p *parser) expect(text string) error {
	if p.peek().text != text || p.peek().kind == tokEOF {
		return p.errf("expected %q", text)
	}
	p.next()
	return nil
}

func (p *parser) accept(text string) bool {
	if p.peek().kind != tokEOF && p.peek().text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	return p.next().text, nil
}

func (p *parser) number() (uint64, error) {
	if p.peek().kind != tokNumber {
		return 0, p.errf("expected number")
	}
	t := p.next()
	v, err := strconv.ParseUint(t.text, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("p4c: line %d: bad number %q", t.line, t.text)
	}
	return v, nil
}

// ---- program structure ----

func (p *parser) parseProgram() (*ir.Program, error) {
	if err := p.expect("program"); err != nil {
		return nil, err
	}
	// Program names may be quoted (they can contain '-', '.', '*').
	var name string
	if p.peek().kind == tokString {
		name = p.next().text
	} else {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		name = n
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	prog := &ir.Program{Name: name}
	var extraFields []ir.Field
	for {
		switch p.peek().text {
		case "field":
			p.next()
			f, err := p.parseField()
			if err != nil {
				return nil, err
			}
			extraFields = append(extraFields, f)
		case "register":
			p.next()
			r, err := p.parseRegister()
			if err != nil {
				return nil, err
			}
			prog.Regs = append(prog.Regs, r)
		case "register_array":
			p.next()
			a, err := p.parseRegArray()
			if err != nil {
				return nil, err
			}
			prog.RegArrays = append(prog.RegArrays, a)
		case "hash_table":
			p.next()
			h, err := p.parseHashTable()
			if err != nil {
				return nil, err
			}
			prog.HashTables = append(prog.HashTables, h)
		case "bloom":
			p.next()
			bl, err := p.parseBloom()
			if err != nil {
				return nil, err
			}
			prog.Blooms = append(prog.Blooms, bl)
		case "sketch":
			p.next()
			sk, err := p.parseSketch()
			if err != nil {
				return nil, err
			}
			prog.Sketches = append(prog.Sketches, sk)
		case "policy":
			p.next()
			pol, err := p.parsePolicy()
			if err != nil {
				return nil, err
			}
			if prog.Policy == nil {
				prog.Policy = pol
			} else {
				prog.Policy.Merge(pol)
			}
		case "table":
			p.next()
			t, err := p.parseTable()
			if err != nil {
				return nil, err
			}
			prog.Tables = append(prog.Tables, t)
		case "apply":
			p.next()
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			stmts, err := p.parseStmtsUntil("}")
			if err != nil {
				return nil, err
			}
			prog.Root = ir.Body(stmts...)
			if err := p.expect("}"); err != nil { // apply's closing brace
				return nil, err
			}
			if err := p.expect("}"); err != nil { // program's closing brace
				return nil, err
			}
			if len(extraFields) > 0 {
				prog.Fields = append(append([]ir.Field(nil), ir.StdFields...), extraFields...)
			}
			return prog, nil
		default:
			return nil, p.errf("expected a declaration or apply block")
		}
	}
}

// parsePolicy reads an information-flow policy block:
//
//	policy {
//	  secret field src_ip;
//	  secret register syn_cnt;
//	  sink action digest;
//	  sink sketch flow_cnt;
//	}
//
// Kinds are checked here (secrets cannot be actions; sinks cannot be
// fields or metadata); whether the named object exists is the analysis
// verifier's job, so a lenient parse can still report every problem.
func (p *parser) parsePolicy() (*ir.SecPolicy, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	pol := &ir.SecPolicy{}
	for !p.accept("}") {
		var secret bool
		switch {
		case p.accept("secret"):
			secret = true
		case p.accept("sink"):
			secret = false
		default:
			return nil, p.errf("expected 'secret' or 'sink' in policy")
		}
		kind, err := p.ident()
		if err != nil {
			return nil, err
		}
		if secret && !ir.ValidSecretKind(kind) {
			return nil, p.errf("invalid secret kind %q", kind)
		}
		if !secret && !ir.ValidSinkKind(kind) {
			return nil, p.errf("invalid sink kind %q", kind)
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if kind == ir.KindAction {
			if _, ok := ir.ActionKindByName(name); !ok {
				return nil, p.errf("unknown action %q in policy", name)
			}
		}
		ref := ir.SecRef{Kind: kind, Name: name}
		if secret {
			pol.Secrets = append(pol.Secrets, ref)
		} else {
			pol.Sinks = append(pol.Sinks, ref)
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return pol, nil
}

func (p *parser) parseField() (ir.Field, error) {
	name, err := p.ident()
	if err != nil {
		return ir.Field{}, err
	}
	if err := p.expect(":"); err != nil {
		return ir.Field{}, err
	}
	bits, err := p.number()
	if err != nil {
		return ir.Field{}, err
	}
	return ir.Field{Name: name, Bits: int(bits)}, p.expect(";")
}

func (p *parser) parseRegister() (ir.RegDecl, error) {
	name, err := p.ident()
	if err != nil {
		return ir.RegDecl{}, err
	}
	if err := p.expect(":"); err != nil {
		return ir.RegDecl{}, err
	}
	bits, err := p.number()
	if err != nil {
		return ir.RegDecl{}, err
	}
	r := ir.RegDecl{Name: name, Bits: int(bits)}
	if p.accept("=") {
		init, err := p.number()
		if err != nil {
			return ir.RegDecl{}, err
		}
		r.Init = init
	}
	return r, p.expect(";")
}

func (p *parser) parseRegArray() (ir.RegArrayDecl, error) {
	name, err := p.ident()
	if err != nil {
		return ir.RegArrayDecl{}, err
	}
	if err := p.expect("["); err != nil {
		return ir.RegArrayDecl{}, err
	}
	size, err := p.number()
	if err != nil {
		return ir.RegArrayDecl{}, err
	}
	if err := p.expect("]"); err != nil {
		return ir.RegArrayDecl{}, err
	}
	if err := p.expect(":"); err != nil {
		return ir.RegArrayDecl{}, err
	}
	bits, err := p.number()
	if err != nil {
		return ir.RegArrayDecl{}, err
	}
	return ir.RegArrayDecl{Name: name, Size: int(size), Bits: int(bits)}, p.expect(";")
}

func (p *parser) parseHashTable() (ir.HashTableDecl, error) {
	name, err := p.ident()
	if err != nil {
		return ir.HashTableDecl{}, err
	}
	if err := p.expect("["); err != nil {
		return ir.HashTableDecl{}, err
	}
	size, err := p.number()
	if err != nil {
		return ir.HashTableDecl{}, err
	}
	if err := p.expect("]"); err != nil {
		return ir.HashTableDecl{}, err
	}
	h := ir.HashTableDecl{Name: name, Size: int(size)}
	if p.accept("seed") {
		seed, err := p.number()
		if err != nil {
			return ir.HashTableDecl{}, err
		}
		h.Seed = uint32(seed)
	}
	return h, p.expect(";")
}

func (p *parser) parseBloom() (ir.BloomDecl, error) {
	name, err := p.ident()
	if err != nil {
		return ir.BloomDecl{}, err
	}
	if err := p.expect("["); err != nil {
		return ir.BloomDecl{}, err
	}
	bits, err := p.number()
	if err != nil {
		return ir.BloomDecl{}, err
	}
	if err := p.expect("]"); err != nil {
		return ir.BloomDecl{}, err
	}
	b := ir.BloomDecl{Name: name, Bits: int(bits), Hashes: 3}
	if p.accept("hashes") {
		h, err := p.number()
		if err != nil {
			return ir.BloomDecl{}, err
		}
		b.Hashes = int(h)
	}
	return b, p.expect(";")
}

func (p *parser) parseSketch() (ir.SketchDecl, error) {
	name, err := p.ident()
	if err != nil {
		return ir.SketchDecl{}, err
	}
	if err := p.expect("["); err != nil {
		return ir.SketchDecl{}, err
	}
	// RxC renders as "3x1024" which lexes as one identifier or number+ident;
	// accept both "R x C" tokens and the fused "RxC" form.
	var rows, cols uint64
	if p.peek().kind == tokNumber {
		r, err := p.number()
		if err != nil {
			return ir.SketchDecl{}, err
		}
		rows = r
		// fused "x1024" or separate "x" "1024"
		if p.peek().kind == tokIdent && strings.HasPrefix(p.peek().text, "x") {
			rest := p.next().text[1:]
			c, err := strconv.ParseUint(rest, 0, 64)
			if err != nil {
				return ir.SketchDecl{}, p.errf("bad sketch shape")
			}
			cols = c
		} else {
			return ir.SketchDecl{}, p.errf("expected RxC sketch shape")
		}
	} else {
		return ir.SketchDecl{}, p.errf("expected RxC sketch shape")
	}
	if err := p.expect("]"); err != nil {
		return ir.SketchDecl{}, err
	}
	return ir.SketchDecl{Name: name, Rows: int(rows), Cols: int(cols)}, p.expect(";")
}

func (p *parser) parseTable() (ir.TableDecl, error) {
	name, err := p.ident()
	if err != nil {
		return ir.TableDecl{}, err
	}
	t := ir.TableDecl{Name: name}
	if err := p.expect("("); err != nil {
		return t, err
	}
	for !p.accept(")") {
		k, err := p.parseExpr()
		if err != nil {
			return t, err
		}
		t.Keys = append(t.Keys, k)
		if !p.accept(",") && p.peek().text != ")" {
			return t, p.errf("expected ',' or ')' in table keys")
		}
	}
	if p.accept("disjoint") {
		t.Disjoint = true
	}
	if err := p.expect("{"); err != nil {
		return t, err
	}
	for !p.accept("}") {
		switch {
		case p.accept("entry"):
			if err := p.expect("("); err != nil {
				return t, err
			}
			var specs []ir.MatchSpec
			for !p.accept(")") {
				spec, err := p.parseMatchSpec()
				if err != nil {
					return t, err
				}
				specs = append(specs, spec)
				if !p.accept(",") && p.peek().text != ")" {
					return t, p.errf("expected ',' or ')' in entry")
				}
			}
			if err := p.expect("->"); err != nil {
				return t, err
			}
			action, err := p.parseStmt()
			if err != nil {
				return t, err
			}
			t.Entries = append(t.Entries, ir.Entry{Match: specs, Action: action})
		case p.accept("default"):
			if err := p.expect("->"); err != nil {
				return t, err
			}
			def, err := p.parseStmt()
			if err != nil {
				return t, err
			}
			t.Default = def
		default:
			return t, p.errf("expected entry/default in table")
		}
	}
	return t, nil
}

func (p *parser) parseMatchSpec() (ir.MatchSpec, error) {
	if p.accept("*") {
		return ir.Wild(), nil
	}
	lo, err := p.number()
	if err != nil {
		return ir.MatchSpec{}, err
	}
	if p.accept("..") {
		hi, err := p.number()
		if err != nil {
			return ir.MatchSpec{}, err
		}
		return ir.Range(lo, hi), nil
	}
	return ir.Exact(lo), nil
}
