package p4c

import (
	"repro/internal/ir"
)

// actionKinds maps surface names to action kinds.
var actionKinds = map[string]ir.ActionKind{
	"noop":        ir.ActNoOp,
	"forward":     ir.ActForward,
	"drop":        ir.ActDrop,
	"to_cpu":      ir.ActToCPU,
	"digest":      ir.ActDigest,
	"recirculate": ir.ActRecirculate,
	"mirror":      ir.ActMirror,
	"to_backend":  ir.ActToBackend,
}

// parseStmtsUntil parses statements until the given closing token (not
// consumed).
func (p *parser) parseStmtsUntil(closer string) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for p.peek().text != closer {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unexpected end of input, expected %q", closer)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (ir.Stmt, error) {
	t := p.peek()
	switch t.text {
	case "block":
		return p.parseBlock()
	case "if":
		return p.parseIf()
	case "access":
		return p.parseAccess()
	case "bloom_test":
		return p.parseBloomTest()
	case "sketch_update":
		return p.parseSketchUpdate()
	case "sketch_if":
		return p.parseSketchIf()
	case "apply_table":
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ir.TableApply{Table: name}, p.expect(";")
	}
	if _, isAction := actionKinds[t.text]; isAction {
		return p.parseAction()
	}
	return p.parseAssignLike()
}

func (p *parser) parseBlock() (ir.Stmt, error) {
	p.next() // block
	if p.peek().kind != tokString {
		return nil, p.errf("expected block label string")
	}
	label := p.next().text
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	stmts, err := p.parseStmtsUntil("}")
	if err != nil {
		return nil, err
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return ir.Blk(label, stmts...), nil
}

func (p *parser) parseIf() (ir.Stmt, error) {
	p.next() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f := &ir.If{Cond: cond, Then: then}
	if p.accept("else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Else = els
	}
	return f, nil
}

func (p *parser) parseAction() (ir.Stmt, error) {
	name, _ := p.ident()
	kind := actionKinds[name]
	if err := p.expect("("); err != nil {
		return nil, err
	}
	a := &ir.Action{Kind: kind}
	if !p.accept(")") {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		a.Arg = arg
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	return a, p.expect(";")
}

// parseAssignLike handles: reg.x = e;  meta.x = e;  meta.x = arr[e];
// arr[e] = e;
func (p *parser) parseAssignLike() (ir.Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch {
	case name == "reg" || name == "meta":
		if err := p.expect("."); err != nil {
			return nil, err
		}
		field, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		// meta.x = arr[idx] is an ArrayRead.
		if name == "meta" && p.peek().kind == tokIdent && p.peekAhead(1).text == "[" {
			arr, _ := p.ident()
			p.next() // [
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			return &ir.ArrayRead{Array: arr, Index: idx, Dest: field}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if name == "reg" {
			return ir.Set(field, e), nil
		}
		return ir.SetM(field, e), nil
	case p.peek().text == "[":
		p.next() // [
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ir.ArrayWrite{Array: name, Index: idx, Value: val}, p.expect(";")
	}
	return nil, p.errf("unrecognized statement %q", name)
}

func (p *parser) peekAhead(n int) token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

// parseAccess handles:
//
//	access store(keys) [write expr] [inc] [evict] [into meta.x] {
//	  on empty -> stmt
//	  on hit -> stmt
//	  on collide -> stmt
//	}
func (p *parser) parseAccess() (ir.Stmt, error) {
	p.next() // access
	store, err := p.ident()
	if err != nil {
		return nil, err
	}
	keys, err := p.parseExprParenList()
	if err != nil {
		return nil, err
	}
	h := &ir.HashAccess{Store: store, Key: keys}
	for {
		switch {
		case p.accept("write"):
			h.Write = true
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			h.Value = v
		case p.accept("inc"):
			h.Inc = true
		case p.accept("evict"):
			h.Evict = true
		case p.accept("into"):
			dest, err := p.parseMetaRefName()
			if err != nil {
				return nil, err
			}
			h.Dest = dest
		default:
			goto arms
		}
	}
arms:
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		arm, stmt, err := p.parseArm()
		if err != nil {
			return nil, err
		}
		switch arm {
		case "empty":
			h.OnEmpty = stmt
		case "hit":
			h.OnHit = stmt
		case "collide":
			h.OnCollide = stmt
		default:
			return nil, p.errf("unknown access arm %q", arm)
		}
	}
	return h, nil
}

func (p *parser) parseBloomTest() (ir.Stmt, error) {
	p.next() // bloom_test
	filter, err := p.ident()
	if err != nil {
		return nil, err
	}
	keys, err := p.parseExprParenList()
	if err != nil {
		return nil, err
	}
	b := &ir.BloomOp{Filter: filter, Key: keys}
	if p.accept("insert") {
		b.Insert = true
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		arm, stmt, err := p.parseArm()
		if err != nil {
			return nil, err
		}
		switch arm {
		case "hit":
			b.OnHit = stmt
		case "miss":
			b.OnMiss = stmt
		default:
			return nil, p.errf("unknown bloom arm %q", arm)
		}
	}
	return b, nil
}

func (p *parser) parseSketchUpdate() (ir.Stmt, error) {
	p.next() // sketch_update
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	keys, err := p.parseExprParenList()
	if err != nil {
		return nil, err
	}
	s := &ir.SketchUpdate{Sketch: name, Key: keys}
	if p.accept("by") {
		inc, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Inc = inc
	}
	if p.accept("into") {
		dest, err := p.parseMetaRefName()
		if err != nil {
			return nil, err
		}
		s.Dest = dest
	}
	return s, p.expect(";")
}

func (p *parser) parseSketchIf() (ir.Stmt, error) {
	p.next() // sketch_if
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	keys, err := p.parseExprParenList()
	if err != nil {
		return nil, err
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	thresh, err := p.number()
	if err != nil {
		return nil, err
	}
	s := &ir.SketchBranch{Sketch: name, Key: keys, Op: op, Threshold: thresh}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		arm, stmt, err := p.parseArm()
		if err != nil {
			return nil, err
		}
		switch arm {
		case "true":
			s.OnTrue = stmt
		case "false":
			s.OnFalse = stmt
		default:
			return nil, p.errf("unknown sketch arm %q", arm)
		}
	}
	return s, nil
}

// parseArm handles `on NAME -> stmt`.
func (p *parser) parseArm() (string, ir.Stmt, error) {
	if err := p.expect("on"); err != nil {
		return "", nil, err
	}
	name, err := p.ident()
	if err != nil {
		return "", nil, err
	}
	if err := p.expect("->"); err != nil {
		return "", nil, err
	}
	stmt, err := p.parseStmt()
	return name, stmt, err
}

func (p *parser) parseExprParenList() ([]ir.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []ir.Expr
	for !p.accept(")") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(",") && p.peek().text != ")" {
			return nil, p.errf("expected ',' or ')'")
		}
	}
	return out, nil
}

func (p *parser) parseMetaRefName() (string, error) {
	if err := p.expect("meta"); err != nil {
		return "", err
	}
	if err := p.expect("."); err != nil {
		return "", err
	}
	return p.ident()
}
