// Quickstart: build a small stateful program with the IR builder API,
// profile it probabilistically, and print the edge cases.
package main

import (
	"fmt"
	"log"

	p4wn "repro"
	"repro/internal/ir"
)

func main() {
	// A toy DDoS guard: count TCP SYNs and punt to the control plane once
	// 100 SYNs have been seen (then reset). The punt block is deep: it
	// takes 100 SYN packets to reach, so plain symbolic execution would
	// need 2^100 paths — P4wn telescopes it instead.
	prog, err := (&ir.Program{
		Name: "syn-guard",
		Regs: []ir.RegDecl{{Name: "syn_cnt", Bits: 32}},
		Root: ir.Body(
			ir.If2(ir.FlagSet(ir.FlagSYN),
				ir.Blk("syn",
					ir.Add1("syn_cnt"),
					ir.If2(ir.Ge(ir.R("syn_cnt"), ir.C(100)),
						ir.Blk("alarm", ir.ToCPU(), ir.Set("syn_cnt", ir.C(0))),
						ir.Blk("pass", ir.Fwd(1)))),
				ir.Blk("non_syn", ir.Fwd(1))),
		),
	}).Build()
	if err != nil {
		log.Fatal(err)
	}

	// Profile against a synthetic trace: the oracle answers "how much of
	// the traffic is SYN?" from the trace instead of assuming uniform.
	traffic := p4wn.GenerateTraffic(p4wn.TrafficOptions{Seed: 7, Packets: 10000})
	profile, err := p4wn.Profile(prog, p4wn.TraceOracle(traffic), p4wn.ProfileOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("probabilistic profile of %s (coverage %.0f%%):\n\n", prog.Name, profile.Coverage*100)
	fmt.Printf("%-4s %-10s %-12s %s\n", "rank", "block", "P(per pkt)", "estimated by")
	for i, n := range profile.Nodes {
		fmt.Printf("%-4d %-10s %-12s %s\n", i+1, n.Label, n.P, n.Source)
	}

	// The rarest block is the alarm; generate a packet sequence that
	// actually triggers it and prove it on the software switch.
	adv, err := p4wn.Adversarial(prog, "alarm", p4wn.AdversarialOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadversarial trace: %d packets, validated on the DUT: %v\n",
		len(adv.Packets), adv.Validated)

	metrics := p4wn.Backtest(prog, p4wn.Amplify(adv, 5, 1000))
	fmt.Printf("replaying the amplified attack punts %d packets/s to the control plane\n",
		metrics.Totals().CPUPkts/5)
}
