// Pipeline composition (§6 "testing targets"): compose two switch programs
// — an ACL filter feeding a NetCache switch over an inter-switch link —
// into one monolithic program and analyze the whole data plane jointly,
// including cross-device edge cases.
package main

import (
	"fmt"
	"log"

	p4wn "repro"
	"repro/internal/ir"
	"repro/internal/programs"
)

func main() {
	up := programs.ACL()        // stage 1: access control, allowed -> port 1
	down := programs.NetCache() // stage 2: in-network key/value cache

	pipe, err := ir.ComposePipeline("acl-then-netcache", up, down, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composed %q: %d code blocks across both stages\n\n", pipe.Name, len(pipe.Nodes()))

	meta := p4wn.System("NetCache (S6)")
	traffic := p4wn.GenerateTraffic(meta.Workload(3))
	prof, err := p4wn.Profile(pipe, p4wn.TraceOracle(traffic), p4wn.ProfileOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rarest cross-device blocks:")
	shown := 0
	for _, n := range prof.Nodes {
		if n.P.IsZero() {
			continue
		}
		fmt.Printf("  %-24s %s (%s)\n", n.Label, n.P, n.Source)
		shown++
		if shown == 8 {
			break
		}
	}

	wire, _ := prof.ByLabel("wire")
	fmt.Printf("\nP(packet crosses the inter-switch link) = %s\n", wire.P)
	fmt.Println("downstream blocks are conditioned on surviving the upstream ACL —")
	fmt.Println("an analysis neither single-device profile could produce.")
}
