// Offload hints (§6 case study): profile the eBPF port-knocking NF and use
// the probabilistic profile to decide which components to offload to a
// programmable switch. Hot components (the non-SSH fast path) move to the
// switch; the stateful knock machinery stays on the server.
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
)

func main() {
	res, err := eval.OffloadCaseStudy(eval.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Println(`
Reading the result: guided offloading captures nearly all of the latency
win because the profile shows almost all packets take the stateless
fast path; rewriting the whole NF onto the switch buys almost nothing
more while consuming far more SRAM/VLIW/stages — the paper's
performance/resource trade-off.`)
}
