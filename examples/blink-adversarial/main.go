// Blink adversarial testing: reproduce the paper's headline case study.
// P4wn profiles the Blink link-failure detector, telescopes the deep
// reroute block (>32 retransmissions), automatically generates the
// fabricated-retransmission trace, and shows the route flipping on the
// backtesting switch — the paper's Figure 11e.
package main

import (
	"fmt"
	"log"

	p4wn "repro"
)

func main() {
	meta := p4wn.System("Blink (S5)")
	prog := meta.Build()

	// A realistic traffic profile: 2% TCP retransmissions. The oracle
	// query "how often does a flow repeat a seq?" is answered from the
	// trace — this is what makes Pr[reroute] ≈ 0.02^33 instead of
	// (2^-32)^33.
	traffic := p4wn.GenerateTraffic(meta.Workload(42))
	profile, err := p4wn.Profile(prog, p4wn.TraceOracle(traffic), p4wn.ProfileOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	reroute, _ := profile.ByLabel("reroute")
	fmt.Printf("Pr[reroute] = %s per packet (estimated by %s)\n", reroute.P, reroute.Source)
	fmt.Println("rarest five blocks:")
	for _, n := range profile.Nodes[:5] {
		fmt.Printf("  %-16s %s\n", n.Label, n.P)
	}

	// Generate the adversarial retransmission storm.
	adv, err := p4wn.Adversarial(prog, "reroute", p4wn.AdversarialOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	repeats := 0
	for i := 1; i < len(adv.Packets); i++ {
		if adv.Packets[i].Seq == adv.Packets[i-1].Seq {
			repeats++
		}
	}
	fmt.Printf("\ngenerated %d packets (%d retransmission pairs), validated: %v\n",
		len(adv.Packets), repeats, adv.Validated)

	// Backtest: normal traffic keeps the primary link; the adversarial
	// trace flips traffic onto the backup path.
	normal := p4wn.GenerateTraffic(meta.Workload(1))
	normal.Retime(0, 1000)
	normalMetrics := p4wn.Backtest(prog, normal)

	attack := p4wn.Amplify(adv, 10, 1000)
	attackMetrics := p4wn.Backtest(prog, attack)

	sumPorts := func(m *p4wn.Metrics, from, to int) float64 {
		t, kb := m.Totals(), 0.0
		for p := from; p <= to && p < len(t.PortKB); p++ {
			kb += t.PortKB[p]
		}
		return kb
	}
	fmt.Printf("\nnormal:      primary %.0f KB, backup %.0f KB\n",
		sumPorts(normalMetrics, 1, 1), sumPorts(normalMetrics, 2, 7))
	fmt.Printf("adversarial: primary %.0f KB, backup %.0f KB  <- route flipped\n",
		sumPorts(attackMetrics, 1, 1), sumPorts(attackMetrics, 2, 7))
}
