// NetCache adversarial testing: under a Zipf key workload the in-switch
// cache absorbs almost all reads; P4wn finds the cache-miss edge case and
// generates the cold-key workload that floods the backend servers
// (the paper's Figure 11f / backend-disruption class).
package main

import (
	"fmt"
	"log"

	p4wn "repro"
)

func main() {
	meta := p4wn.System("NetCache (S6)")
	prog := meta.Build()

	// The key/value workload: Zipf-distributed keys, 5% writes.
	workload := p4wn.GenerateTraffic(meta.Workload(7))
	profile, err := p4wn.Profile(prog, p4wn.TraceOracle(workload), p4wn.ProfileOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NetCache profile (rarest blocks first):")
	for _, n := range profile.Nodes[:6] {
		fmt.Printf("  %-18s %s\n", n.Label, n.P)
	}

	adv, err := p4wn.Adversarial(prog, "cache_miss", p4wn.AdversarialOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncache-miss trace: %d packets, validated: %v\n", len(adv.Packets), adv.Validated)

	// Warm a switch with the normal workload, then measure the backend
	// load under normal vs adversarial traffic.
	measure := func(tr *p4wn.Traffic) int {
		sw := p4wn.NewSwitch(prog)
		warm := p4wn.GenerateTraffic(meta.Workload(8))
		for i := range warm.Packets {
			sw.Process(&warm.Packets[i])
		}
		return sw.Replay(tr).Totals().BackendPkts
	}

	normal := p4wn.GenerateTraffic(meta.Workload(9))
	normal.Retime(0, 1000)
	attack := p4wn.Amplify(adv, int(normal.Duration()/1e6)+1, 1000)

	nb, ab := measure(normal), measure(attack)
	fmt.Printf("\nbackend requests: normal %d, adversarial %d (%.1fx)\n",
		nb, ab, float64(ab)/float64(nb+1))
	fmt.Println("every adversarial read targets a cold key, so the in-switch cache never helps.")
}
