#!/usr/bin/env bash
# Multi-process loopback e2e of the fleet layer: build p4wnd + p4wn, start
# three worker daemons and a coordinator in front of them, and assert
#
#   1. the coordinator answers the liveness/readiness probes and names its
#      role, and `p4wn cluster status` sees every shard ready;
#   2. profiles routed through the coordinator are identical to both a
#      single-node daemon and the offline `p4wn profile` output for a
#      program x target matrix (compared via jq, modulo run-local timing
#      and job metadata);
#   3. the coordinator /metrics exposition carries the per-shard cluster
#      series and passes the Prometheus format lint (promlint);
#   4. kill -9 on the worker running a job only degrades the fleet: the
#      job is re-routed, finishes, and its profile still matches offline;
#   5. SIGTERM on the coordinator drains cleanly (exit 0) with a job in
#      flight on the remaining workers;
#   6. a fixed batch gets faster as the fleet grows: 1/2/3-worker wall
#      times land in CLUSTER_<date>.json for CI to archive next to the
#      BENCH reports.
#
# Requires: go, curl, jq. Run from anywhere; it cds to the repo root.
set -euo pipefail

cd "$(cd "$(dirname "$0")/.." && pwd)"

BASE_PORT="${P4WND_CLUSTER_PORT:-18490}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster_smoke: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$WORK/p4wn" ./cmd/p4wn
go build -o "$WORK/p4wnd" ./cmd/p4wnd
go build -o "$WORK/promlint" ./cmd/promlint

# start_worker <name> <port> [extra p4wnd flags...] -> appends to PIDS and
# records the pid in $WORK/<name>.pid. Each daemon gets its own store.
start_worker() {
  local name=$1 port=$2; shift 2
  "$WORK/p4wnd" -addr "127.0.0.1:$port" -store "$WORK/store-$name" \
    -log-format json "$@" >"$WORK/$name.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  echo "$pid" >"$WORK/$name.pid"
}

wait_healthy() {
  local url=$1 name=$2
  for _ in $(seq 1 150); do
    curl -fs "$url/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "$name never became healthy at $url (log: $(tail -3 "$WORK/$name.log" 2>/dev/null))"
}

W1=$BASE_PORT; W2=$((BASE_PORT + 1)); W3=$((BASE_PORT + 2))
COORD=$((BASE_PORT + 3)); SINGLE=$((BASE_PORT + 4))
CBASE="http://127.0.0.1:$COORD"
SBASE="http://127.0.0.1:$SINGLE"

echo "== start 3 workers + coordinator + single-node reference"
start_worker w1 "$W1"
start_worker w2 "$W2"
start_worker w3 "$W3"
start_worker single "$SINGLE"
wait_healthy "http://127.0.0.1:$W1" w1
wait_healthy "http://127.0.0.1:$W2" w2
wait_healthy "http://127.0.0.1:$W3" w3
wait_healthy "$SBASE" single
start_worker coord "$COORD" -coordinator \
  -workers "127.0.0.1:$W1,127.0.0.1:$W2,127.0.0.1:$W3" -heartbeat 250ms
wait_healthy "$CBASE" coord

echo "== coordinator probes and shard visibility"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$CBASE/healthz")" = "200" ] \
  || fail "coordinator /healthz is not 200"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$CBASE/readyz")" = "200" ] \
  || fail "coordinator /readyz is not 200"
curl -fs "$CBASE/v1/healthz" | jq -e '.role == "coordinator"' >/dev/null \
  || fail "coordinator /v1/healthz does not name its role"
for _ in $(seq 1 50); do
  READY=$("$WORK/p4wn" cluster status -addr "$CBASE" -json | jq '[.shards[] | select(.ready)] | length')
  [ "$READY" = "3" ] && break
  sleep 0.1
done
[ "$READY" = "3" ] || fail "cluster status sees $READY/3 shards ready"
echo "   role=coordinator, 3/3 shards ready"

echo "== byte-identity: coordinator vs single node vs offline"
# Everything except run-local timing and the job block must agree.
PROFILE_VIEW='{schema_version, kind, program, options, converged, coverage, nodes, ifc}'
CHECKED=0
for prog in "copy-to-cpu" "resubmit" "encap" "simple_router"; do
  for tgt in idealized tofino; do
    slug=$(echo "$prog-$tgt" | tr -c 'a-zA-Z0-9' '_')
    "$WORK/p4wn" profile -prog "$prog" -target "$tgt" \
      -report "$WORK/off-$slug.json" >/dev/null 2>&1
    "$WORK/p4wn" submit -addr "$CBASE" -prog "$prog" -target-model "$tgt" -follow \
      >"$WORK/clu-$slug.json" 2>/dev/null
    "$WORK/p4wn" submit -addr "$SBASE" -prog "$prog" -target-model "$tgt" -follow \
      >"$WORK/one-$slug.json" 2>/dev/null
    jq -S "$PROFILE_VIEW" "$WORK/off-$slug.json" >"$WORK/off-$slug.view"
    jq -S "$PROFILE_VIEW" "$WORK/clu-$slug.json" >"$WORK/clu-$slug.view"
    jq -S "$PROFILE_VIEW" "$WORK/one-$slug.json" >"$WORK/one-$slug.view"
    diff -u "$WORK/off-$slug.view" "$WORK/clu-$slug.view" >&2 \
      || fail "coordinator profile differs from offline for $prog/$tgt"
    diff -u "$WORK/one-$slug.view" "$WORK/clu-$slug.view" >&2 \
      || fail "coordinator profile differs from single node for $prog/$tgt"
    CHECKED=$((CHECKED + 1))
  done
done
echo "   $CHECKED program x target cells identical across all three paths"

echo "== coordinator metrics: per-shard cluster series + promlint"
curl -fs "$CBASE/metrics" >"$WORK/coord.metrics"
for series in cluster_forwards cluster_jobs_done cluster_enqueued; do
  grep -q "^$series" "$WORK/coord.metrics" \
    || fail "/metrics is missing the $series series"
done
grep -q "^cluster_forwards{shard=" "$WORK/coord.metrics" \
  || fail "cluster_forwards carries no shard label"
"$WORK/promlint" "$CBASE/metrics" || fail "coordinator /metrics fails promlint"
FWD_TOTAL=$("$WORK/p4wn" cluster status -addr "$CBASE" -json | jq '[.shards[].forwards] | add')
[ "$FWD_TOTAL" -ge "$CHECKED" ] || fail "only $FWD_TOTAL forwards recorded for $CHECKED jobs"

echo "== kill -9 the worker running a job; the fleet must only degrade"
# Blink is ~10s of engine work: plenty of time to observe which shard got
# it and to murder that worker mid-run.
KILL_OUT=$("$WORK/p4wn" submit -addr "$CBASE" -prog "Blink (S5)")
KILL_ID=$(echo "$KILL_OUT" | awk '{print $1}')
VICTIM=""
for _ in $(seq 1 100); do
  VICTIM=$("$WORK/p4wn" cluster status -addr "$CBASE" -json \
    | jq -r '.shards[] | select(.dispatched > 0) | .addr' | head -1)
  [ -n "$VICTIM" ] && break
  sleep 0.1
done
[ -n "$VICTIM" ] || fail "no shard ever showed the Blink job dispatched"
VICTIM_PORT="${VICTIM##*:}"
case "$VICTIM_PORT" in
  "$W1") VICTIM_PID=$(cat "$WORK/w1.pid") ;;
  "$W2") VICTIM_PID=$(cat "$WORK/w2.pid") ;;
  "$W3") VICTIM_PID=$(cat "$WORK/w3.pid") ;;
  *) fail "victim shard $VICTIM maps to no worker" ;;
esac
sleep 1  # let the job actually start executing on the victim
kill -9 "$VICTIM_PID"
echo "   killed $VICTIM (pid $VICTIM_PID) with job $KILL_ID in flight"
DONE=0
for _ in $(seq 1 600); do
  if "$WORK/p4wn" status -addr "$CBASE" -id "$KILL_ID" 2>/dev/null | grep -q done; then
    DONE=1; break
  fi
  sleep 0.2
done
[ "$DONE" = "1" ] || fail "job $KILL_ID never finished after its worker was killed"
RETRIES=$("$WORK/p4wn" cluster status -addr "$CBASE" -json | jq '[.shards[].retries] | add')
[ "$RETRIES" -ge 1 ] || fail "worker kill recorded no retries"
"$WORK/p4wn" result -addr "$CBASE" -id "$KILL_ID" -o "$WORK/blink-cluster.json" 2>/dev/null
"$WORK/p4wn" profile -prog "Blink (S5)" -report "$WORK/blink-offline.json" >/dev/null 2>&1
jq -S "$PROFILE_VIEW" "$WORK/blink-cluster.json" >"$WORK/blink-cluster.view"
jq -S "$PROFILE_VIEW" "$WORK/blink-offline.json" >"$WORK/blink-offline.view"
diff -u "$WORK/blink-offline.view" "$WORK/blink-cluster.view" >&2 \
  || fail "re-routed job's profile differs from offline"
echo "   job re-routed (retries=$RETRIES), profile still identical to offline"

echo "== SIGTERM drain with a job in flight on the surviving workers"
DRAIN_OUT=$("$WORK/p4wn" submit -addr "$CBASE" -prog "Blink (S5)" -seed 5)
DRAIN_ID=$(echo "$DRAIN_OUT" | awk '{print $1}')
for _ in $(seq 1 100); do
  "$WORK/p4wn" status -addr "$CBASE" -id "$DRAIN_ID" 2>/dev/null | grep -q running && break
  sleep 0.1
done
COORD_PID=$(cat "$WORK/coord.pid")
kill -TERM "$COORD_PID"
# Draining: not-ready for the balancer, still live for the orchestrator.
code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 1 "$CBASE/readyz" || true)
if kill -0 "$COORD_PID" 2>/dev/null && [ "$code" != "503" ]; then
  fail "coordinator /readyz answered $code while draining"
fi
if ! wait "$COORD_PID"; then fail "coordinator exited nonzero on drain"; fi
echo "   coordinator drained cleanly with a job in flight"

for w in w1 w2 w3 single; do
  kill "$(cat "$WORK/$w.pid")" 2>/dev/null || true
done

echo "== throughput: the same batch on 1, 2, and 3 workers"
# 12 distinct NetCache jobs, one single-threaded engine job per worker at
# a time (-jobs 1 -workers 1), so on a multi-core host the wall time tracks
# fleet size instead of the engines fighting over shared cores. Fresh
# stores every round keep every run a real engine run. -steal-load 2
# spreads the batch when the ring hashes it unevenly.
BATCH_PROG="NetCache (S6)"
BATCH_N=12
ROUNDS_JSON="[]"
for NW in 1 2 3; do
  RPORT=$((BASE_PORT + 10))
  RADDRS=""
  for i in $(seq 1 "$NW"); do
    start_worker "r$NW-w$i" $((RPORT + i)) -jobs 1 -workers 1
    RADDRS="${RADDRS:+$RADDRS,}127.0.0.1:$((RPORT + i))"
  done
  for i in $(seq 1 "$NW"); do
    wait_healthy "http://127.0.0.1:$((RPORT + i))" "r$NW-w$i"
  done
  start_worker "r$NW-coord" $((RPORT + 8)) -coordinator -workers "$RADDRS" \
    -heartbeat 250ms -steal-load 2
  RBASE="http://127.0.0.1:$((RPORT + 8))"
  wait_healthy "$RBASE" "r$NW-coord"

  T0=$(date +%s.%N)
  # Raw curl keeps the submit loop off the measured path (a p4wn process
  # per job would swamp the engine time for small batches).
  for seed in $(seq 101 $((100 + BATCH_N))); do
    curl -fs -X POST "$RBASE/v1/jobs" -H 'Content-Type: application/json' \
      -d "{\"program\": \"$BATCH_PROG\", \"options\": {\"seed\": $seed}}" >/dev/null \
      || fail "round $NW: submit seed=$seed refused"
  done
  DONE_N=0
  for _ in $(seq 1 1200); do
    DONE_N=$(curl -fs "$RBASE/v1/jobs" | jq '[.jobs[] | select(.state == "done")] | length')
    [ "$DONE_N" -ge "$BATCH_N" ] && break
    sleep 0.05
  done
  [ "$DONE_N" -ge "$BATCH_N" ] \
    || fail "round $NW: only $DONE_N/$BATCH_N jobs finished"
  T1=$(date +%s.%N)
  WALL=$(awk -v a="$T0" -v b="$T1" 'BEGIN{printf "%.3f", b-a}')
  echo "   $NW worker(s): ${WALL}s for $BATCH_N jobs"
  ROUNDS_JSON=$(jq -c --argjson w "$NW" --argjson n "$BATCH_N" --argjson s "$WALL" \
    '. + [{workers: $w, jobs: $n, wall_sec: $s}]' <<<"$ROUNDS_JSON")
  for i in $(seq 1 "$NW"); do kill "$(cat "$WORK/r$NW-w$i.pid")" 2>/dev/null || true; done
  kill "$(cat "$WORK/r$NW-coord.pid")" 2>/dev/null || true
  wait 2>/dev/null || true
done

REPORT="CLUSTER_$(date -u +%Y-%m-%d).json"
jq -n --argjson rounds "$ROUNDS_JSON" \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --arg prog "$BATCH_PROG" \
  '{generated_at: $date, batch_program: $prog, rounds: $rounds}' >"$REPORT"
echo "   wrote $REPORT"

# The fleet must not get slower as it grows. On a single-core host the
# rounds come out flat (the engines share the one CPU), so this asserts
# no coordination blowup rather than a strict speedup; multi-core hosts
# see the real scaling curve.
W1S=$(jq '.rounds[0].wall_sec' "$REPORT")
W3S=$(jq '.rounds[2].wall_sec' "$REPORT")
awk -v a="$W1S" -v b="$W3S" 'BEGIN{exit !(b <= a * 1.25)}' \
  || fail "3 workers (${W3S}s) much slower than 1 worker (${W1S}s)"

echo "cluster_smoke: PASS"
