#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: build p4wnd + p4wn, start the
# daemon, submit the quickstart program, poll to completion, and assert
#
#   1. the served profile is identical to the offline `p4wn profile` output
#      (everything except run-local timing/job metadata, compared via jq);
#   2. the /metrics exposition passes the Prometheus format lint (promlint)
#      and /debug/trace/{id} exports a well-formed Chrome trace;
#   3. resubmitting is answered from the content-addressed store without a
#      second engine run (checked through /metrics counters);
#   4. SIGTERM with a job in flight drains cleanly (exit 0) and persists
#      the result.
#
# Requires: go, curl, jq. Run from anywhere; it cds to the repo root.
set -euo pipefail

cd "$(cd "$(dirname "$0")/.." && pwd)"

PORT="${P4WND_SMOKE_PORT:-18471}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$WORK/p4wn" ./cmd/p4wn
go build -o "$WORK/p4wnd" ./cmd/p4wnd
go build -o "$WORK/promlint" ./cmd/promlint

echo "== start daemon on $ADDR"
"$WORK/p4wnd" -addr "$ADDR" -store "$WORK/store" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  curl -fs "$BASE/v1/healthz" >/dev/null 2>&1 && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
curl -fs "$BASE/v1/healthz" | grep -q serving || fail "daemon not healthy"

echo "== liveness and readiness probes"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/healthz")" = "200" ] \
  || fail "/healthz is not 200 on a serving daemon"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = "200" ] \
  || fail "/readyz is not 200 on a serving daemon"
curl -fs "$BASE/readyz" | grep -q serving || fail "/readyz body does not say serving"

PROG=examples/programs/syn_guard.p4w

echo "== offline profile"
"$WORK/p4wn" profile -file "$PROG" -report "$WORK/offline.json" >/dev/null

echo "== served profile (submit + follow)"
"$WORK/p4wn" submit -addr "$BASE" -file "$PROG" -follow \
  >"$WORK/served.json" 2>"$WORK/follow.log"
grep -q "iter" "$WORK/follow.log" || fail "no progress lines streamed over SSE"

# The profile itself must be identical; only the job block and the
# run-local wall-clock numbers may differ between served and offline runs.
PROFILE_VIEW='{schema_version, kind, program, options, converged, coverage, nodes, ifc}'
jq -S "$PROFILE_VIEW" "$WORK/offline.json" > "$WORK/offline.profile"
jq -S "$PROFILE_VIEW" "$WORK/served.json"  > "$WORK/served.profile"
diff -u "$WORK/offline.profile" "$WORK/served.profile" \
  || fail "served profile differs from offline profile"
jq -e '.job.id and .job.kind == "profile"' "$WORK/served.json" >/dev/null \
  || fail "served report has no job metadata block"
echo "   served profile is identical to offline output"

echo "== metrics exposition passes the Prometheus lint"
"$WORK/promlint" "$BASE/metrics" || fail "/metrics fails the Prometheus format lint"

echo "== trace export opens as Chrome trace_event JSON"
TRACE_JOB=$(jq -r '.job.id' "$WORK/served.json")
"$WORK/p4wn" trace -addr "$BASE" -id "$TRACE_JOB" -o "$WORK/trace.json" 2>/dev/null
jq -e '.traceEvents | length > 0' "$WORK/trace.json" >/dev/null \
  || fail "trace export has no events"
jq -e '[.traceEvents[].name] | contains(["job","run","probprof"])' "$WORK/trace.json" >/dev/null \
  || fail "trace export is missing the job/run/probprof spans"
jq -e '.otherData.trace_id | length == 16' "$WORK/trace.json" >/dev/null \
  || fail "trace export carries no trace_id"
echo "   trace has job/run/probprof spans and a trace_id"

echo "== resubmission is served from the store"
runs_before=$(curl -fs "$BASE/metrics" | awk '$1 == "serve_jobs_run" {print $2}')
"$WORK/p4wn" submit -addr "$BASE" -file "$PROG" > "$WORK/resubmit.out"
grep -q "(cached)" "$WORK/resubmit.out" || fail "resubmission was not served as cached"
runs_after=$(curl -fs "$BASE/metrics" | awk '$1 == "serve_jobs_run" {print $2}')
[ "$runs_before" = "$runs_after" ] || fail "resubmission re-ran the engine ($runs_before -> $runs_after)"
hits=$(curl -fs "$BASE/metrics" | awk '$1 == "serve_store_hits" {print $2}')
[ "${hits:-0}" -ge 1 ] || fail "store hit not counted (serve_store_hits=$hits)"
echo "   cached answer, engine runs unchanged at $runs_after"

echo "== same program under two device targets"
# flowlet's 1024-slot flowlet table diverges under tofino's SRAM clamps, so the
# two submissions must land in distinct store entries AND disagree on the
# profile itself.
"$WORK/p4wn" submit -addr "$BASE" -prog "flowlet (S2)" -target-model idealized -follow \
  >"$WORK/tgt_ideal.json" 2>/dev/null
"$WORK/p4wn" submit -addr "$BASE" -prog "flowlet (S2)" -target-model tofino -follow \
  >"$WORK/tgt_tofino.json" 2>/dev/null
ID_IDEAL=$(jq -r '.job.id' "$WORK/tgt_ideal.json")
ID_TOFINO=$(jq -r '.job.id' "$WORK/tgt_tofino.json")
[ -n "$ID_IDEAL" ] && [ "$ID_IDEAL" != "$ID_TOFINO" ] \
  || fail "two targets share one store key ($ID_IDEAL)"
jq -e '.target == "idealized"' "$WORK/tgt_ideal.json" >/dev/null \
  || fail "idealized result does not name its target"
jq -e '.target == "tofino"' "$WORK/tgt_tofino.json" >/dev/null \
  || fail "tofino result does not name its target"
jq -S '.nodes' "$WORK/tgt_ideal.json" >"$WORK/tgt_ideal.nodes"
jq -S '.nodes' "$WORK/tgt_tofino.json" >"$WORK/tgt_tofino.nodes"
cmp -s "$WORK/tgt_ideal.nodes" "$WORK/tgt_tofino.nodes" \
  && fail "tofino profile is identical to idealized — target model had no effect"
[ -s "$WORK/store/$ID_IDEAL.json" ] && [ -s "$WORK/store/$ID_TOFINO.json" ] \
  || fail "per-target results not both persisted"
echo "   distinct store keys and divergent profiles per target"

echo "== client status/result/cancel surface"
JOB_ID=$(jq -r '.job.id' "$WORK/served.json")
"$WORK/p4wn" status -addr "$BASE" -id "$JOB_ID" | grep -q done || fail "status does not report done"
# Buffer the listing: `grep -q` would close the pipe on the first match,
# and with several jobs listed the client would die on SIGPIPE under
# pipefail before finishing its output.
"$WORK/p4wn" status -addr "$BASE" >"$WORK/jobs.list"
grep -q "$JOB_ID" "$WORK/jobs.list" || fail "job list misses the job"
"$WORK/p4wn" result -addr "$BASE" -id "$JOB_ID" -o "$WORK/fetched.json" 2>/dev/null
cmp -s "$WORK/served.json" "$WORK/fetched.json" || fail "result fetch is not byte-identical to the stored result"
"$WORK/p4wn" cancel -addr "$BASE" -id "$JOB_ID" >/dev/null || fail "cancel of a finished job errored"

echo "== SIGTERM drain with a job in flight"
# Blink is the slowest stateful zoo program (~10s of engine work), which
# guarantees TERM lands while it executes and leaves a wide window to
# observe the readiness flip.
"$WORK/p4wn" submit -addr "$BASE" -prog "Blink (S5)" > "$WORK/drain.out"
DRAIN_ID=$(awk '{print $1}' "$WORK/drain.out")
for _ in $(seq 1 100); do
  "$WORK/p4wn" status -addr "$BASE" -id "$DRAIN_ID" | grep -q running && break
  sleep 0.05
done
kill -TERM "$DAEMON_PID"
# While the in-flight job flushes, the daemon must advertise not-ready
# (balancers route away) but stay live (orchestrators don't kill it).
READY_FLIPPED=0
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 1 "$BASE/readyz" || true)
  if [ "$code" = "503" ]; then READY_FLIPPED=1; break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.02
done
[ "$READY_FLIPPED" = "1" ] || fail "/readyz never went 503 while draining"
if kill -0 "$DAEMON_PID" 2>/dev/null; then
  code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 1 "$BASE/healthz" || true)
  # The daemon may finish its flush between the liveness check and the
  # curl; only a live daemon answering non-200 is a failure.
  if kill -0 "$DAEMON_PID" 2>/dev/null && [ "$code" != "200" ]; then
    fail "/healthz dropped during drain (got $code)"
  fi
fi
if ! wait "$DAEMON_PID"; then fail "daemon exited nonzero on drain"; fi
DAEMON_PID=""
[ -s "$WORK/store/$DRAIN_ID.json" ] || fail "in-flight job's result not persisted through drain"
jq -e . "$WORK/store/$DRAIN_ID.json" >/dev/null || fail "persisted result is not valid JSON"
echo "   drained cleanly, in-flight result persisted"

echo "serve_smoke: PASS"
