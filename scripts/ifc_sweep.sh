#!/usr/bin/env bash
# Information-flow sweep: run the probability-weighted ifc lint over every
# annotated program — the example files under examples/programs/ and every
# zoo program carrying an inline policy — and summarize leak counts and the
# maximum leak probability per program.
#
# Exits non-zero if any lint invocation fails outright, if a program that
# must be clean reports a leak, or if a program that must leak reports
# none. The summary table goes to stdout (and into $IFC_SWEEP_OUT if set).
#
# Requires: go. Run from anywhere; it cds to the repo root.
set -euo pipefail

cd "$(cd "$(dirname "$0")/.." && pwd)"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "ifc_sweep: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$WORK/p4wn" ./cmd/p4wn

# sweep <label> <flags...> — lint one program, record "label leaks maxp".
sweep() {
  local label="$1"; shift
  local out="$WORK/$label.out"
  if ! "$WORK/p4wn" lint "$@" -weighted >"$out" 2>&1; then
    cat "$out" >&2
    fail "lint of $label exited nonzero"
  fi
  local line leaks maxp
  line=$(grep -E '^ifc ' "$out" | head -1) || fail "no ifc summary for $label"
  leaks=$(sed -E 's/.*: ([0-9]+) leak\(s\).*/\1/' <<<"$line")
  maxp=$(sed -nE 's/.*max leak p ([0-9.e+-]+).*/\1/p' <<<"$line")
  printf '%-16s %6s %12s\n' "$label" "$leaks" "${maxp:--}" >>"$WORK/summary"
  echo "$leaks"
}

echo "== sweep: example programs"
for f in examples/programs/*.p4w; do
  name=$(basename "$f" .p4w)
  leaks=$(sweep "$name" -file "$f")
  case "$name" in
    ifc_clean) [ "$leaks" = 0 ] || fail "ifc_clean must be leak-free, got $leaks" ;;
    ifc_leaky) [ "$leaks" = 1 ] || fail "ifc_leaky must report exactly 1 leak, got $leaks" ;;
    *)         [ "$leaks" -ge 1 ] || fail "$name carries a policy but reported no leaks" ;;
  esac
done

echo "== sweep: zoo programs with inline policies"
# Every zoo program whose lint output contains an ifc section is annotated.
# Names may contain spaces ("lb (S1)"), so read them line by line with the
# LoC/structures columns stripped.
"$WORK/p4wn" list | awk 'NR>1' | sed -E 's/ +[0-9]+ +.*$//' \
  >"$WORK/zoo.names"
while IFS= read -r prog; do
  if "$WORK/p4wn" lint -prog "$prog" -ifc >"$WORK/probe.out" 2>&1 &&
     grep -qE '^ifc ' "$WORK/probe.out"; then
    label=$(printf '%s' "$prog" | tr -c 'A-Za-z0-9._-' '_')
    sweep "$label" -prog "$prog" >/dev/null
  fi
done <"$WORK/zoo.names"

echo
printf '%-16s %6s %12s\n' program leaks 'max leak p'
sort "$WORK/summary"
[ "$(wc -l <"$WORK/summary")" -ge 10 ] \
  || fail "sweep covered fewer programs than expected"
if [ -n "${IFC_SWEEP_OUT:-}" ]; then
  { printf '%-16s %6s %12s\n' program leaks 'max leak p'; sort "$WORK/summary"; } >"$IFC_SWEEP_OUT"
fi

echo "ifc_sweep: PASS"
