#!/usr/bin/env bash
# Cross-target sweep: profile every zoo and example program under each
# device model and check the pluggable-target contract:
#
#   1. `-target idealized` produces byte-identical profiles to a run that
#      never names a target — at several worker counts — for EVERY program;
#   2. the constrained models (tofino, ebpf) genuinely change the profile
#      on at least 3 programs each (SRAM clamps, exact-state maps, stage
#      budgets, and recirculation bans must be observable, not cosmetic).
#
# Only the profile text above the run summary is compared; the summary
# carries wall-clock timings that differ between runs by construction.
# The comparison table goes to stdout (and into $TARGET_SWEEP_OUT if set).
#
# Requires: go. Run from anywhere; it cds to the repo root.
set -euo pipefail

cd "$(cd "$(dirname "$0")/.." && pwd)"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "target_sweep: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$WORK/p4wn" ./cmd/p4wn

# profile_text <out> <flags...> — profile once, keep only the byte-stable
# profile section (everything before the "run:" summary line).
profile_text() {
  local out="$1"; shift
  "$WORK/p4wn" profile "$@" -seed 1 >"$out.full" 2>"$out.err" \
    || { cat "$out.err" >&2; fail "profile $* exited nonzero"; }
  sed '/^run: /,$d' "$out.full" >"$out"
}

TOFINO_DIFF=0
EBPF_DIFF=0
COUNT=0

# sweep <label> <flags...> — run one program under every target and record
# a row "label tofino-verdict ebpf-verdict".
sweep() {
  local label="$1"; shift
  local d="$WORK/$label"
  profile_text "$d.default" "$@"
  profile_text "$d.ideal1" "$@" -target idealized -workers 1
  profile_text "$d.ideal4" "$@" -target idealized -workers 4
  cmp -s "$d.default" "$d.ideal1" \
    || fail "$label: idealized (workers=1) differs from the default profile"
  cmp -s "$d.default" "$d.ideal4" \
    || fail "$label: idealized (workers=4) differs from the default profile"
  profile_text "$d.tofino" "$@" -target tofino
  profile_text "$d.ebpf" "$@" -target ebpf
  local tv=same ev=same
  cmp -s "$d.default" "$d.tofino" || { tv=DIFF; TOFINO_DIFF=$((TOFINO_DIFF + 1)); }
  cmp -s "$d.default" "$d.ebpf" || { ev=DIFF; EBPF_DIFF=$((EBPF_DIFF + 1)); }
  COUNT=$((COUNT + 1))
  printf '%-24s %8s %8s\n' "$label" "$tv" "$ev" >>"$WORK/summary"
}

echo "== sweep: example programs"
for f in examples/programs/*.p4w; do
  sweep "$(basename "$f" .p4w)" -file "$f"
done

echo "== sweep: zoo programs"
"$WORK/p4wn" list | awk 'NR>1' | sed -E 's/ +[0-9]+ +.*$//' >"$WORK/zoo.names"
while IFS= read -r prog; do
  label=$(printf '%s' "$prog" | tr -c 'A-Za-z0-9._-' '_')
  sweep "$label" -prog "$prog"
done <"$WORK/zoo.names"

echo
printf '%-24s %8s %8s\n' program tofino ebpf
sort "$WORK/summary"
echo
echo "programs swept: $COUNT, tofino diverges on $TOFINO_DIFF, ebpf diverges on $EBPF_DIFF"

[ "$COUNT" -ge 15 ] || fail "sweep covered fewer programs than expected ($COUNT)"
[ "$TOFINO_DIFF" -ge 3 ] || fail "tofino must diverge on >= 3 programs, got $TOFINO_DIFF"
[ "$EBPF_DIFF" -ge 3 ] || fail "ebpf must diverge on >= 3 programs, got $EBPF_DIFF"

if [ -n "${TARGET_SWEEP_OUT:-}" ]; then
  { printf '%-24s %8s %8s\n' program tofino ebpf; sort "$WORK/summary"; } >"$TARGET_SWEEP_OUT"
fi

echo "target_sweep: PASS"
