package p4wn_test

import (
	"testing"

	p4wn "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	// The quickstart flow: profile a system, pick an edge case, generate
	// an adversarial trace, replay it.
	m := p4wn.System("counter (S12)")
	prog := m.Build()

	oracle := p4wn.TraceOracle(p4wn.GenerateTraffic(p4wn.TrafficOptions{Seed: 1, Packets: 5000}))
	prof, err := p4wn.Profile(prog, oracle, p4wn.ProfileOptions{Seed: 1, SampleBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Nodes) == 0 {
		t.Fatal("empty profile")
	}

	adv, err := p4wn.Adversarial(prog, "tcp_sample", p4wn.AdversarialOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Validated {
		t.Fatal("adversarial trace did not validate")
	}

	workload := p4wn.Amplify(adv, 3, 200)
	metrics := p4wn.Backtest(prog, workload)
	if metrics.Totals().Mirrors == 0 {
		t.Fatal("adversarial replay should trigger mirrors")
	}
}

func TestFacadeSystemsRegistry(t *testing.T) {
	if len(p4wn.Systems()) < 25 {
		t.Fatalf("zoo too small: %d", len(p4wn.Systems()))
	}
	if _, ok := p4wn.LookupSystem("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("System should panic on unknown name")
		}
	}()
	p4wn.System("nope")
}

func TestFacadeStaticOracle(t *testing.T) {
	prog := p4wn.System("copy-to-cpu").Build()
	oracle := p4wn.StaticOracle().SetPairEq("seq", 0.02)
	prof, err := p4wn.Profile(prog, oracle, p4wn.ProfileOptions{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Converged {
		t.Fatal("stateless profile should converge")
	}
}

func TestFacadeAdversarialUnknownLabel(t *testing.T) {
	prog := p4wn.System("copy-to-cpu").Build()
	if _, err := p4wn.Adversarial(prog, "missing", p4wn.AdversarialOptions{}); err == nil {
		t.Fatal("unknown label should error")
	}
}
