package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the p4wn CLI: when re-exec'd
// with P4WN_TEST_EXEC=1 it runs main() instead of the test suite, so the
// exit-code contract can be asserted against the real os.Exit paths.
func TestMain(m *testing.M) {
	if os.Getenv("P4WN_TEST_EXEC") == "1" {
		main()
		return // main exits via runners; a clean fall-through is status 0
	}
	os.Exit(m.Run())
}

// p4wnCmd re-execs the test binary as the CLI with the given arguments.
func p4wnCmd(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "P4WN_TEST_EXEC=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

const (
	leakyFile = "../../examples/programs/ifc_leaky.p4w"
	cleanFile = "../../examples/programs/ifc_clean.p4w"
)

// Exit-code contract (documented in the package comment): lint exits 0
// when the program is clean, 1 on error-severity findings or a tripped
// -fail-on threshold, 2 on usage errors.

func TestLintExitClean(t *testing.T) {
	out, _, code := p4wnCmd(t, "lint", "-file", cleanFile, "-ifc")
	if code != 0 {
		t.Fatalf("clean lint exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "0 leak(s)") {
		t.Errorf("clean program must report zero leaks:\n%s", out)
	}
}

func TestLintExitLeakReported(t *testing.T) {
	// Leaks alone are warnings: exit 0 without -fail-on.
	out, _, code := p4wnCmd(t, "lint", "-file", leakyFile, "-ifc")
	if code != 0 {
		t.Fatalf("unthresholded leak lint exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "1 leak(s)") ||
		!strings.Contains(out, "register:secret_key -> action:digest") {
		t.Errorf("leak not reported:\n%s", out)
	}
	if !strings.Contains(out, "key_probe") {
		t.Errorf("witness chain missing:\n%s", out)
	}
}

func TestLintExitFailOnTripped(t *testing.T) {
	// The key_probe leak sits at 2^-16 ≈ 1.5e-5; a threshold below that
	// must trip (exit 1), one above must pass (exit 0).
	out, _, code := p4wnCmd(t, "lint", "-file", leakyFile, "-fail-on", "1e-6")
	if code != 1 {
		t.Fatalf("tripped -fail-on exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "p 1.5") {
		t.Errorf("weighted probability missing:\n%s", out)
	}

	out, _, code = p4wnCmd(t, "lint", "-file", leakyFile, "-fail-on", "1e-3")
	if code != 0 {
		t.Fatalf("sub-threshold -fail-on exit = %d, want 0\n%s", code, out)
	}
}

func TestLintExitUsage(t *testing.T) {
	_, stderr, code := p4wnCmd(t, "lint", "-no-such-flag")
	if code != 2 {
		t.Fatalf("flag error exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Errorf("no usage line on stderr:\n%s", stderr)
	}

	_, _, code = p4wnCmd(t, "frobnicate")
	if code != 2 {
		t.Fatalf("unknown command exit = %d, want 2", code)
	}
}

func TestLintExitBadPolicyFile(t *testing.T) {
	_, stderr, code := p4wnCmd(t, "lint", "-file", cleanFile, "-policy", "/nonexistent.json")
	if code != 1 {
		t.Fatalf("unreadable policy exit = %d, want 1\n%s", code, stderr)
	}
}
