package main

// Client side of the p4wnd daemon: submit/status/result/cancel speak the
// JSON HTTP API documented on cmd/p4wnd. The daemon address comes from
// -addr, falling back to the P4WND_ADDR environment variable, falling back
// to the default local port.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

const defaultDaemonAddr = "http://127.0.0.1:8471"

// addrFlag registers the shared -addr flag.
func addrFlag(fs *flag.FlagSet) *string {
	def := defaultDaemonAddr
	if env := os.Getenv("P4WND_ADDR"); env != "" {
		def = env
	}
	return fs.String("addr", def, "p4wnd base URL (or set P4WND_ADDR)")
}

// baseURL canonicalizes the daemon address: a bare host:port gets the
// http scheme, trailing slashes go away.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// apiError extracts the server's error envelope, falling back to the
// status line for non-JSON bodies.
func apiError(resp *http.Response, body []byte) error {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

// doJSON performs one API request and decodes a JSON response into out
// (skipped when out is nil). Non-2xx responses become errors carrying the
// server's message.
func doJSON(method, url string, reqBody, out any) error {
	var rd io.Reader
	if reqBody != nil {
		data, err := json.Marshal(reqBody)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, body)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

func printStatusTo(w io.Writer, st serve.JobStatus) {
	line := fmt.Sprintf("%s  %-11s %s", st.ID, st.State, st.Kind)
	if st.Cached {
		line += "  (cached)"
	}
	if st.Error != "" {
		line += "  error: " + st.Error
	}
	fmt.Fprintln(w, line)
}

func printStatus(st serve.JobStatus) { printStatusTo(os.Stdout, st) }

// runSubmit enqueues a profiling or adversarial job on the daemon and
// prints the job ID; with -follow it then streams progress and prints the
// result JSON to stdout once the job finishes.
func runSubmit(args []string) {
	fs := newFlagSet("submit", "submit (-prog name | -file prog.p4w) [-target label] [-target-model model] [-uniform] [-scale quick|default|full] [-seed n] [-priority n] [-job-timeout d] [-follow] [-addr url]")
	addr := addrFlag(fs)
	progName := fs.String("prog", "", "zoo program name")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	target := fs.String("target", "", "code-block label: submit an adversarial job")
	targetModel := fs.String("target-model", "", "device model to run against (see `p4wn targets`)")
	uniform := fs.Bool("uniform", false, "profile against the uniform header space")
	scale := fs.String("scale", "", "options preset: quick, default, or full")
	seed := fs.Int64("seed", 1, "random seed (matches `p4wn profile`'s default)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock bound (0 = server default)")
	follow := fs.Bool("follow", false, "stream progress, then print the result JSON")
	parseFlags(fs, args)
	mustTargetModel(fs, *targetModel)

	spec := serve.JobSpec{
		Program:    *progName,
		Uniform:    *uniform,
		Target:     *target,
		Scale:      *scale,
		Options:    core.WireOptions{Seed: *seed, Target: *targetModel},
		Priority:   *priority,
		TimeoutSec: jobTimeout.Seconds(),
	}
	if *target != "" {
		spec.Kind = serve.KindAdversarial
	}
	if *progFile != "" {
		src, err := os.ReadFile(*progFile)
		if err != nil {
			fatal(err)
		}
		spec.Source = string(src)
	}
	if (spec.Program == "") == (spec.Source == "") {
		fmt.Fprintln(os.Stderr, "p4wn submit: needs exactly one of -prog, -file")
		fs.Usage()
		os.Exit(2)
	}

	base := baseURL(*addr)
	var st serve.JobStatus
	if err := doJSON(http.MethodPost, base+"/v1/jobs", spec, &st); err != nil {
		fatal(err)
	}
	if !*follow {
		printStatus(st)
		return
	}
	// Following: stdout carries only the result JSON; the status line and
	// progress stream go to stderr.
	printStatusTo(os.Stderr, st)
	if !st.Cached {
		if err := followEvents(base, st.ID); err != nil {
			fatal(err)
		}
	}
	if err := fetchResult(base, st.ID, os.Stdout); err != nil {
		fatal(err)
	}
}

// followEvents streams the job's SSE progress feed to stderr until the
// daemon sends the terminal "done" event.
func followEvents(base, id string) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return apiError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "done" {
				fmt.Fprintf(os.Stderr, "job %s: %s\n", id, data)
				return nil
			}
			fmt.Fprintln(os.Stderr, data)
		}
	}
	return sc.Err()
}

// fetchResult downloads the stored result JSON, retrying briefly while the
// job is still finishing (the SSE done event can beat result persistence).
func fetchResult(base, id string, w io.Writer) error {
	url := base + "/v1/jobs/" + id + "/result"
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			_, err := w.Write(body)
			return err
		case http.StatusAccepted:
			lastErr = fmt.Errorf("job %s still %s", id, jobStateOf(body))
			time.Sleep(250 * time.Millisecond)
		default:
			return apiError(resp, body)
		}
	}
	return lastErr
}

func jobStateOf(body []byte) string {
	var st serve.JobStatus
	if json.Unmarshal(body, &st) == nil && st.State != "" {
		return string(st.State)
	}
	return "pending"
}

// runStatus prints one job's status, or every job the daemon knows about.
func runStatus(args []string) {
	fs := newFlagSet("status", "status [-id job] [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID (omit to list all jobs)")
	parseFlags(fs, args)

	base := baseURL(*addr)
	if *id != "" {
		var st serve.JobStatus
		if err := doJSON(http.MethodGet, base+"/v1/jobs/"+*id, nil, &st); err != nil {
			fatal(err)
		}
		printStatus(st)
		return
	}
	var list struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if err := doJSON(http.MethodGet, base+"/v1/jobs", nil, &list); err != nil {
		fatal(err)
	}
	for _, st := range list.Jobs {
		printStatus(st)
	}
}

// runResult fetches a finished job's result JSON.
func runResult(args []string) {
	fs := newFlagSet("result", "result -id job [-o out.json] [-follow] [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID")
	out := fs.String("o", "", "write the result here instead of stdout")
	follow := fs.Bool("follow", false, "wait for a queued/running job instead of failing")
	parseFlags(fs, args)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "p4wn result: -id required")
		fs.Usage()
		os.Exit(2)
	}

	base := baseURL(*addr)
	if *follow {
		if err := followEvents(base, *id); err != nil {
			fatal(err)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := fetchResult(base, *id, w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote result to %s\n", *out)
	}
}

// runTrace downloads a job's span tree as Chrome trace_event JSON, ready
// to open in chrome://tracing or https://ui.perfetto.dev.
func runTrace(args []string) {
	fs := newFlagSet("trace", "trace -id job [-o trace.json] [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID")
	out := fs.String("o", "", "write the trace here instead of stdout")
	parseFlags(fs, args)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "p4wn trace: -id required")
		fs.Usage()
		os.Exit(2)
	}

	resp, err := http.Get(baseURL(*addr) + "/debug/trace/" + *id)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(apiError(resp, body))
	}
	if *out == "" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
}

// runCancel cancels a queued or running job.
func runCancel(args []string) {
	fs := newFlagSet("cancel", "cancel -id job [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID")
	parseFlags(fs, args)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "p4wn cancel: -id required")
		fs.Usage()
		os.Exit(2)
	}
	var st serve.JobStatus
	if err := doJSON(http.MethodDelete, baseURL(*addr)+"/v1/jobs/"+*id, nil, &st); err != nil {
		fatal(err)
	}
	printStatus(st)
}
