package main

// Client side of the p4wnd daemon: submit/status/result/cancel speak the
// JSON HTTP API documented on cmd/p4wnd. The daemon address comes from
// -addr, falling back to the P4WND_ADDR environment variable, falling back
// to the default local port.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

const defaultDaemonAddr = "http://127.0.0.1:8471"

// addrFlag registers the shared -addr flag.
func addrFlag(fs *flag.FlagSet) *string {
	def := defaultDaemonAddr
	if env := os.Getenv("P4WND_ADDR"); env != "" {
		def = env
	}
	return fs.String("addr", def, "p4wnd base URL (or set P4WND_ADDR)")
}

// baseURL canonicalizes the daemon address: a bare host:port gets the
// http scheme, trailing slashes go away.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// apiError extracts the server's error envelope, falling back to the
// status line for non-JSON bodies.
func apiError(resp *http.Response, body []byte) error {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

// doJSON performs one API request and decodes a JSON response into out
// (skipped when out is nil). Non-2xx responses become errors carrying the
// server's message.
func doJSON(method, url string, reqBody, out any) error {
	return doJSONRetry(method, url, reqBody, out, 0)
}

// doJSONRetry is doJSON with bounded retries over transient failures:
// connection errors and 429/502/503/504 responses. The wait between
// attempts doubles from retryBaseDelay with ±25% jitter; a 429 carrying
// Retry-After waits at least that long (the daemon sets it when its queue
// or a tenant quota is full). Anything else — including every 4xx other
// than 429 — fails immediately: the request itself is wrong, repeating it
// can't help.
func doJSONRetry(method, url string, reqBody, out any, retries int) error {
	var data []byte
	if reqBody != nil {
		var err error
		if data, err = json.Marshal(reqBody); err != nil {
			return err
		}
	}
	delay := retryBaseDelay
	for attempt := 0; ; attempt++ {
		err, retryAfter, retryable := doJSONOnce(method, url, data, out)
		if err == nil || !retryable || attempt >= retries {
			return err
		}
		wait := jitter(delay)
		if retryAfter > wait {
			wait = retryAfter
		}
		fmt.Fprintf(os.Stderr, "p4wn: %v; retrying in %s (%d/%d)\n",
			err, wait.Round(time.Millisecond), attempt+1, retries)
		time.Sleep(wait)
		if delay < retryMaxDelay {
			delay *= 2
		}
	}
}

const (
	retryBaseDelay = 250 * time.Millisecond
	retryMaxDelay  = 8 * time.Second
)

// jitter spreads a backoff delay ±25% so synchronized clients desynchronize.
func jitter(d time.Duration) time.Duration {
	return d + time.Duration((rand.Float64()-0.5)*0.5*float64(d))
}

// doJSONOnce is one attempt: the error (nil on success), any Retry-After
// hint, and whether the failure is worth retrying.
func doJSONOnce(method, url string, data []byte, out any) (err error, retryAfter time.Duration, retryable bool) {
	var rd io.Reader
	if data != nil {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err, 0, false
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		// Connection refused, reset, timeout: the transport failed before any
		// server judgment — transient by assumption.
		return err, 0, true
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err, 0, true
	}
	if resp.StatusCode/100 != 2 {
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			if secs, convErr := strconv.Atoi(resp.Header.Get("Retry-After")); convErr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
			return apiError(resp, body), retryAfter, true
		}
		return apiError(resp, body), 0, false
	}
	if out != nil {
		return json.Unmarshal(body, out), 0, false
	}
	return nil, 0, false
}

func printStatusTo(w io.Writer, st serve.JobStatus) {
	line := fmt.Sprintf("%s  %-11s %s", st.ID, st.State, st.Kind)
	if st.Cached {
		line += "  (cached)"
	}
	if st.Error != "" {
		line += "  error: " + st.Error
	}
	fmt.Fprintln(w, line)
}

func printStatus(st serve.JobStatus) { printStatusTo(os.Stdout, st) }

// runSubmit enqueues a profiling or adversarial job on the daemon and
// prints the job ID; with -follow it then streams progress and prints the
// result JSON to stdout once the job finishes.
func runSubmit(args []string) {
	fs := newFlagSet("submit", "submit (-prog name | -file prog.p4w) [-target label] [-target-model model] [-uniform] [-scale quick|default|full] [-seed n] [-priority n] [-tenant name] [-retries n] [-job-timeout d] [-follow] [-addr url]")
	addr := addrFlag(fs)
	progName := fs.String("prog", "", "zoo program name")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	target := fs.String("target", "", "code-block label: submit an adversarial job")
	targetModel := fs.String("target-model", "", "device model to run against (see `p4wn targets`)")
	uniform := fs.Bool("uniform", false, "profile against the uniform header space")
	scale := fs.String("scale", "", "options preset: quick, default, or full")
	seed := fs.Int64("seed", 1, "random seed (matches `p4wn profile`'s default)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	tenant := fs.String("tenant", "", "tenant name for coordinator fair-share scheduling")
	retries := fs.Int("retries", 3, "resubmit attempts over backpressure (429) and connection errors")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock bound (0 = server default)")
	follow := fs.Bool("follow", false, "stream progress, then print the result JSON")
	parseFlags(fs, args)
	mustTargetModel(fs, *targetModel)

	spec := serve.JobSpec{
		Program:    *progName,
		Uniform:    *uniform,
		Target:     *target,
		Scale:      *scale,
		Options:    core.WireOptions{Seed: *seed, Target: *targetModel},
		Priority:   *priority,
		Tenant:     *tenant,
		TimeoutSec: jobTimeout.Seconds(),
	}
	if *target != "" {
		spec.Kind = serve.KindAdversarial
	}
	if *progFile != "" {
		src, err := os.ReadFile(*progFile)
		if err != nil {
			fatal(err)
		}
		spec.Source = string(src)
	}
	if (spec.Program == "") == (spec.Source == "") {
		fmt.Fprintln(os.Stderr, "p4wn submit: needs exactly one of -prog, -file")
		fs.Usage()
		os.Exit(2)
	}

	base := baseURL(*addr)
	var st serve.JobStatus
	if err := doJSONRetry(http.MethodPost, base+"/v1/jobs", spec, &st, *retries); err != nil {
		fatal(err)
	}
	if !*follow {
		printStatus(st)
		return
	}
	// Following: stdout carries only the result JSON; the status line and
	// progress stream go to stderr.
	printStatusTo(os.Stderr, st)
	if !st.Cached {
		if err := followEvents(base, st.ID); err != nil {
			fatal(err)
		}
	}
	if err := fetchResult(base, st.ID, os.Stdout); err != nil {
		fatal(err)
	}
}

// followEvents streams the job's SSE progress feed to stderr until the
// daemon sends the terminal "done" event.
func followEvents(base, id string) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return apiError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "done" {
				fmt.Fprintf(os.Stderr, "job %s: %s\n", id, data)
				return nil
			}
			fmt.Fprintln(os.Stderr, data)
		}
	}
	return sc.Err()
}

// fetchResult downloads the stored result JSON, retrying briefly while the
// job is still finishing (the SSE done event can beat result persistence).
func fetchResult(base, id string, w io.Writer) error {
	url := base + "/v1/jobs/" + id + "/result"
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			_, err := w.Write(body)
			return err
		case http.StatusAccepted:
			lastErr = fmt.Errorf("job %s still %s", id, jobStateOf(body))
			time.Sleep(250 * time.Millisecond)
		default:
			return apiError(resp, body)
		}
	}
	return lastErr
}

func jobStateOf(body []byte) string {
	var st serve.JobStatus
	if json.Unmarshal(body, &st) == nil && st.State != "" {
		return string(st.State)
	}
	return "pending"
}

// runStatus prints one job's status, or every job the daemon knows about.
func runStatus(args []string) {
	fs := newFlagSet("status", "status [-id job] [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID (omit to list all jobs)")
	parseFlags(fs, args)

	base := baseURL(*addr)
	if *id != "" {
		var st serve.JobStatus
		if err := doJSON(http.MethodGet, base+"/v1/jobs/"+*id, nil, &st); err != nil {
			fatal(err)
		}
		printStatus(st)
		return
	}
	var list struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if err := doJSON(http.MethodGet, base+"/v1/jobs", nil, &list); err != nil {
		fatal(err)
	}
	for _, st := range list.Jobs {
		printStatus(st)
	}
}

// runResult fetches a finished job's result JSON.
func runResult(args []string) {
	fs := newFlagSet("result", "result -id job [-o out.json] [-follow] [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID")
	out := fs.String("o", "", "write the result here instead of stdout")
	follow := fs.Bool("follow", false, "wait for a queued/running job instead of failing")
	parseFlags(fs, args)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "p4wn result: -id required")
		fs.Usage()
		os.Exit(2)
	}

	base := baseURL(*addr)
	if *follow {
		if err := followEvents(base, *id); err != nil {
			fatal(err)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := fetchResult(base, *id, w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote result to %s\n", *out)
	}
}

// runTrace downloads a job's span tree as Chrome trace_event JSON, ready
// to open in chrome://tracing or https://ui.perfetto.dev.
func runTrace(args []string) {
	fs := newFlagSet("trace", "trace -id job [-o trace.json] [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID")
	out := fs.String("o", "", "write the trace here instead of stdout")
	parseFlags(fs, args)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "p4wn trace: -id required")
		fs.Usage()
		os.Exit(2)
	}

	resp, err := http.Get(baseURL(*addr) + "/debug/trace/" + *id)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(apiError(resp, body))
	}
	if *out == "" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
}

// runCluster talks to a coordinator: `p4wn cluster status` renders the
// shard table (liveness, queue depths, forward/steal/retry counters) plus
// tenant fair-share state; -json dumps the raw wire form.
func runCluster(args []string) {
	if len(args) < 1 || args[0] != "status" {
		fmt.Fprintln(os.Stderr, "usage: p4wn cluster status [-json] [-addr url]")
		os.Exit(2)
	}
	fs := newFlagSet("cluster status", "cluster status [-json] [-addr url]")
	addr := addrFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw JSON status")
	parseFlags(fs, args[1:])

	var st cluster.ClusterStatus
	if err := doJSON(http.MethodGet, baseURL(*addr)+"/v1/cluster/status", nil, &st); err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(st)
		return
	}
	state := "serving"
	if st.Draining {
		state = "draining"
	}
	fmt.Printf("coordinator: %s  pending=%d jobs=%d cache=%d entries (%d hits)\n\n",
		state, st.Pending, st.Jobs, st.CacheResident, st.CacheHits)
	rows := make([][]string, 0, len(st.Shards))
	for _, sh := range st.Shards {
		shState := "down"
		switch {
		case sh.Ready:
			shState = "ready"
		case sh.Alive:
			shState = "draining"
		}
		rows = append(rows, []string{
			sh.Addr, shState,
			strconv.Itoa(sh.QueueDepth), strconv.Itoa(sh.Running), strconv.Itoa(sh.Dispatched),
			strconv.FormatInt(sh.Forwards, 10), strconv.FormatInt(sh.Steals, 10),
			strconv.FormatInt(sh.RemoteHits, 10), strconv.FormatInt(sh.Retries, 10),
		})
	}
	fmt.Print(obs.Table(
		[]string{"shard", "state", "queue", "running", "dispatched", "forwards", "steals", "remote-hits", "retries"},
		rows))
	if len(st.Tenants) > 0 {
		fmt.Println()
		trows := make([][]string, 0, len(st.Tenants))
		for _, tn := range st.Tenants {
			name := tn.Name
			if name == "" {
				name = "default"
			}
			trows = append(trows, []string{
				name, strconv.FormatFloat(tn.Weight, 'g', -1, 64),
				strconv.Itoa(tn.Pending), strconv.FormatInt(tn.Rejected, 10),
			})
		}
		fmt.Print(obs.Table([]string{"tenant", "weight", "pending", "rejected"}, trows))
	}
}

// runCancel cancels a queued or running job.
func runCancel(args []string) {
	fs := newFlagSet("cancel", "cancel -id job [-addr url]")
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID")
	parseFlags(fs, args)
	if *id == "" {
		fmt.Fprintln(os.Stderr, "p4wn cancel: -id required")
		fs.Usage()
		os.Exit(2)
	}
	var st serve.JobStatus
	if err := doJSON(http.MethodDelete, baseURL(*addr)+"/v1/jobs/"+*id, nil, &st); err != nil {
		fatal(err)
	}
	printStatus(st)
}
