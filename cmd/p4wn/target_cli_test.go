package main

import (
	"strings"
	"testing"
)

// `p4wn targets` lists every registered device model with its limits.
func TestTargetsSubcommand(t *testing.T) {
	out, _, code := p4wnCmd(t, "targets")
	if code != 0 {
		t.Fatalf("targets exit = %d\n%s", code, out)
	}
	for _, want := range []string{"idealized", "tofino", "ebpf",
		"stages<=12(drop)", "no-recirc", "none"} {
		if !strings.Contains(out, want) {
			t.Errorf("targets output missing %q:\n%s", want, out)
		}
	}
}

// Unknown device models follow the subcommand usage contract: an error
// naming the bad target plus the known registry, the usage line, exit 2.
func TestProfileUnknownTargetExit2(t *testing.T) {
	_, errOut, code := p4wnCmd(t, "profile", "-prog", "counter", "-target", "bmv2")
	if code != 2 {
		t.Fatalf("profile -target bmv2 exit = %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, `unknown target "bmv2"`) ||
		!strings.Contains(errOut, "tofino") {
		t.Errorf("error must name the target and the registry:\n%s", errOut)
	}
	if !strings.Contains(errOut, "usage: p4wn profile") {
		t.Errorf("usage synopsis missing:\n%s", errOut)
	}
}

func TestAdversarialUnknownTargetModelExit2(t *testing.T) {
	_, errOut, code := p4wnCmd(t, "adversarial", "-prog", "counter",
		"-target", "guard", "-target-model", "bmv2")
	if code != 2 {
		t.Fatalf("adversarial -target-model bmv2 exit = %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, `unknown target "bmv2"`) {
		t.Errorf("error must name the bad model:\n%s", errOut)
	}
}

// A known target profiles end to end through the CLI.
func TestProfileWithTargetRuns(t *testing.T) {
	out, _, code := p4wnCmd(t, "profile", "-prog", "counter (S12)", "-target", "tofino")
	if code != 0 {
		t.Fatalf("profile -target tofino exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "target tofino") {
		t.Errorf("run summary must name the target:\n%s", out)
	}
}
