// Command p4wn is the CLI front end: list the program zoo, profile a
// system, generate adversarial traces, and backtest traces against the
// software switch.
//
//	p4wn list
//	p4wn lint -prog "Blink (S5)" [-deps]
//	p4wn lint -file my_program.p4w
//	p4wn lint -all
//	p4wn profile -prog "Blink (S5)" [-uniform] [-seed 1] [-v] [-report out.json]
//	p4wn profile -file my_program.p4w
//
// Observability flags (profile): -v streams per-iteration trace lines to
// stderr, -report writes the versioned JSON run report, -metrics-addr serves
// /metrics + expvar + pprof over HTTP for the duration of the run, and
// -cpuprofile/-memprofile capture Go runtime profiles. -workers sets the
// profiler's degree of parallelism (0 selects GOMAXPROCS); the profile is
// byte-identical for every worker count.
//
//	p4wn adversarial -prog "Blink (S5)" -target reroute [-out adv.pcap]
//	p4wn backtest -prog "Blink (S5)" -trace adv.pcap
//	p4wn monitor -prog "Blink (S5)" -trace adv.pcap
//
// Trace files ending in .pcap are written/read as libpcap captures
// (replayable with standard tooling); any other extension uses the
// repository's binary trace format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	p4wn "repro"
	"repro/internal/dut"
	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/p4c"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	progName := fs.String("prog", "", "program name from `p4wn list`")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	target := fs.String("target", "", "target code-block label (adversarial)")
	traceFile := fs.String("trace", "", "trace file to replay (backtest)")
	out := fs.String("out", "", "output trace file (adversarial)")
	seed := fs.Int64("seed", 1, "random seed")
	uniform := fs.Bool("uniform", false, "profile against the uniform header space instead of a synthetic trace")
	seconds := fs.Int("seconds", 10, "amplified workload duration (adversarial)")
	pps := fs.Int("pps", 1000, "amplified workload rate (adversarial)")
	lintAll := fs.Bool("all", false, "lint every zoo program (lint)")
	lintDeps := fs.Bool("deps", false, "print the state-dependency graph (lint)")
	workers := fs.Int("workers", 0, "profiler parallelism; 0 selects GOMAXPROCS (profile, monitor)")
	verbose := fs.Bool("v", false, "stream per-iteration trace lines to stderr (profile)")
	reportPath := fs.String("report", "", "write the JSON run report to this path (profile)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, expvar, and pprof on this address (profile)")
	cpuProfile := fs.String("cpuprofile", "", "write a Go CPU profile to this path (profile)")
	memProfile := fs.String("memprofile", "", "write a Go heap profile to this path (profile)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "list":
		cmdList()
	case "lint":
		cmdLint(*progName, *progFile, *lintAll, *lintDeps)
	case "profile":
		cmdProfile(*progName, *progFile, *seed, *uniform, *workers, obsFlags{
			verbose: *verbose, report: *reportPath, metricsAddr: *metricsAddr,
			cpuProfile: *cpuProfile, memProfile: *memProfile,
		})
	case "adversarial":
		cmdAdversarial(*progName, *progFile, *target, *out, *seed, *seconds, *pps)
	case "backtest":
		cmdBacktest(*progName, *progFile, *traceFile)
	case "monitor":
		cmdMonitor(*progName, *traceFile, *seed, *workers)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: p4wn <list|lint|profile|adversarial|backtest|monitor> [flags]")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p4wn:", err)
	os.Exit(1)
}

func mustProgram(name string) p4wn.SystemMeta {
	if name == "" {
		fatal(fmt.Errorf("-prog required (see `p4wn list`)"))
	}
	m, ok := p4wn.LookupSystem(name)
	if !ok {
		fatal(fmt.Errorf("unknown program %q", name))
	}
	return m
}

// buildProgram resolves -prog / -file into a built program. When lenient is
// set, a -file program is compiled without reference validation so the lint
// verifier can report every problem instead of stopping at the first.
func buildProgram(name, file string, lenient bool) *p4wn.Program {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		parse := p4c.Parse
		if lenient {
			parse = p4c.ParseUnvalidated
		}
		prog, err := parse(string(src))
		if err != nil {
			fatal(err)
		}
		return prog
	}
	return mustProgram(name).Build()
}

// loadProgram resolves -prog / -file into a built program plus a workload
// generator for its oracle.
func loadProgram(name, file string, seed int64) (*p4wn.Program, p4wn.Oracle) {
	if file != "" {
		return buildProgram(name, file, false),
			p4wn.TraceOracle(p4wn.GenerateTraffic(p4wn.TrafficOptions{Seed: seed}))
	}
	m := mustProgram(name)
	return m.Build(), p4wn.TraceOracle(p4wn.GenerateTraffic(m.Workload(seed)))
}

func cmdList() {
	fmt.Printf("%-20s %6s %9s %s\n", "name", "LoC", "stateful", "structures")
	for _, m := range p4wn.Systems() {
		structs := ""
		if m.UsesHash {
			structs += "hash "
		}
		if m.UsesBloom {
			structs += "bloom "
		}
		if m.UsesSketch {
			structs += "sketch "
		}
		if m.DeepState {
			structs += "deep"
		}
		st := "-"
		if m.Stateful {
			st = "yes"
		}
		fmt.Printf("%-20s %6d %9s %s\n", m.Name, m.PaperLoC, st, structs)
	}
}

// cmdLint runs the static-analysis suite and prints every diagnostic with
// its block label. The exit code is non-zero when any program has
// error-severity findings (malformed IR).
func cmdLint(name, file string, all, deps bool) {
	var progs []*p4wn.Program
	switch {
	case all:
		for _, m := range p4wn.Systems() {
			progs = append(progs, m.Build())
		}
	case name != "" || file != "":
		progs = append(progs, buildProgram(name, file, true))
	default:
		fatal(fmt.Errorf("lint needs -prog, -file, or -all"))
	}
	errors := 0
	for _, prog := range progs {
		r := p4wn.Lint(prog)
		fmt.Print(r)
		errors += r.Errors()
		if deps && r.Deps != nil {
			fmt.Print(r.Deps)
		}
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// obsFlags bundles the observability flags shared by profile (and, over
// time, other long-running subcommands).
type obsFlags struct {
	verbose     bool
	report      string
	metricsAddr string
	cpuProfile  string
	memProfile  string
}

func cmdProfile(name, file string, seed int64, uniform bool, workers int, of obsFlags) {
	prog, oracle := loadProgram(name, file, seed)
	if uniform {
		oracle = nil
	}

	stopProfiles, err := obs.StartProfiles(of.cpuProfile, of.memProfile)
	if err != nil {
		fatal(err)
	}
	opt := p4wn.ProfileOptions{Seed: seed, Workers: workers}
	if of.verbose {
		opt.Tracer = obs.NewTracer(os.Stderr)
	}
	reg := obs.NewRegistry()
	opt.Registry = reg
	if of.metricsAddr != "" {
		addr, closeSrv, err := obs.ServeMetrics(of.metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer closeSrv()
		fmt.Fprintf(os.Stderr, "serving metrics at http://%s/metrics\n", addr)
	}

	prof, err := p4wn.Profile(prog, oracle, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(prof)

	rep := p4wn.Report(prof, opt)
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.Summary())
	if of.report != "" {
		if err := obs.WriteJSONAtomic(of.report, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote run report to %s\n", of.report)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

func cmdAdversarial(name, file, target, out string, seed int64, seconds, pps int) {
	prog, _ := loadProgram(name, file, seed)
	if target == "" {
		fatal(fmt.Errorf("-target required (a block label from `p4wn profile`)"))
	}
	adv, err := p4wn.Adversarial(prog, target, p4wn.AdversarialOptions{Seed: seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d seed packets for %s/%s (validated=%v)\n",
		len(adv.Packets), prog.Name, target, adv.Validated)
	fmt.Printf("  symbex %.3fs, solver %.3fs, havocing %.3fs\n",
		adv.Decomp.Symbex.Seconds(), adv.Decomp.Solver.Seconds(), adv.Decomp.Havoc.Seconds())
	if out != "" {
		w := p4wn.Amplify(adv, seconds, pps)
		var werr error
		if strings.HasSuffix(out, ".pcap") {
			werr = w.WritePcapFile(out)
		} else {
			werr = w.WriteFile(out)
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("wrote %d-packet amplified workload to %s\n", w.Len(), out)
	}
}

func cmdBacktest(name, file, traceFile string) {
	prog, _ := loadProgram(name, file, 1)
	if traceFile == "" {
		fatal(fmt.Errorf("-trace required"))
	}
	var tr *trace.Trace
	var err error
	if strings.HasSuffix(traceFile, ".pcap") {
		tr, err = trace.ReadPcapFile(traceFile)
	} else {
		tr, err = trace.ReadFile(traceFile)
	}
	if err != nil {
		fatal(err)
	}
	metrics := p4wn.Backtest(prog, tr)
	tot := metrics.Totals()
	fmt.Printf("replayed %d packets over %d virtual seconds on %s\n", tr.Len(), metrics.Seconds, prog.Name)
	fmt.Printf("  cpu punts: %d, digests: %d, recircs: %d, mirrors: %d, backend: %d, drops: %d\n",
		tot.CPUPkts, tot.Digests, tot.Recircs, tot.Mirrors, tot.BackendPkts, tot.Dropped)
	for port, kb := range tot.PortKB {
		if kb > 0 {
			fmt.Printf("  port %d: %.1f KB\n", port, kb)
		}
	}
	fmt.Println()
	fmt.Println(metrics.Render(map[string][]float64{
		"cpu/s":     dut.IntSeries(metrics.CPUPkts),
		"backend/s": dut.IntSeries(metrics.BackendPkts),
		"recirc/s":  dut.IntSeries(metrics.Recircs),
	}))
}

// cmdMonitor implements the §6 mitigation flow: build the expected profile,
// replay a trace with block counters attached, and report anomaly alarms.
func cmdMonitor(name, traceFile string, seed int64, workers int) {
	m := mustProgram(name)
	prog := m.Build()
	if traceFile == "" {
		fatal(fmt.Errorf("-trace required"))
	}
	var tr *trace.Trace
	var err error
	if strings.HasSuffix(traceFile, ".pcap") {
		tr, err = trace.ReadPcapFile(traceFile)
	} else {
		tr, err = trace.ReadFile(traceFile)
	}
	if err != nil {
		fatal(err)
	}

	oracle := p4wn.TraceOracle(p4wn.GenerateTraffic(m.Workload(seed)))
	prof, err := p4wn.Profile(prog, oracle, p4wn.ProfileOptions{Seed: seed, Workers: workers})
	if err != nil {
		fatal(err)
	}

	sw := p4wn.NewSwitch(prog)
	mon := mitigate.New(prof, mitigate.Options{})
	mon.Attach(sw)
	for i := range tr.Packets {
		sw.Process(&tr.Packets[i])
	}
	mon.Flush()

	alarms := mon.Alarms()
	fmt.Printf("monitored %d packets over %d windows: %d alarms\n",
		tr.Len(), mon.Windows(), len(alarms))
	for _, a := range alarms {
		fmt.Println(" ", a)
	}
	if len(alarms) > 0 {
		os.Exit(3) // distinct exit code for detected anomalies
	}
}
