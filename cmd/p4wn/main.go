// Command p4wn is the CLI front end: list the program zoo, profile a
// system, generate adversarial traces, backtest traces against the
// software switch — and talk to a running p4wnd daemon.
//
//	p4wn list
//	p4wn lint -prog "Blink (S5)" [-deps]
//	p4wn lint -file my_program.p4w
//	p4wn lint -all
//	p4wn lint -prog "Counter (S1)" -ifc [-policy pol.json] [-weighted] [-fail-on 1e-3]
//	p4wn profile -prog "Blink (S5)" [-uniform] [-seed 1] [-v] [-report out.json]
//	p4wn profile -file my_program.p4w
//
// Observability flags (profile): -v streams per-iteration trace lines to
// stderr, -report writes the versioned JSON run report, -metrics-addr serves
// /metrics + expvar + pprof over HTTP for the duration of the run, and
// -cpuprofile/-memprofile capture Go runtime profiles. -workers sets the
// profiler's degree of parallelism (0 selects GOMAXPROCS); the profile is
// byte-identical for every worker count.
//
//	p4wn adversarial -prog "Blink (S5)" -target reroute [-out adv.pcap]
//	p4wn backtest -prog "Blink (S5)" -trace adv.pcap
//	p4wn monitor -prog "Blink (S5)" -trace adv.pcap
//
// Service subcommands speak JSON over HTTP to a p4wnd daemon (-addr, or
// P4WND_ADDR in the environment):
//
//	p4wn submit -file prog.p4w [-follow]     enqueue a profiling job
//	p4wn submit -prog "Blink (S5)" -target reroute   adversarial job
//	p4wn status [-id JOB]                    one job, or every known job
//	p4wn result -id JOB [-o out.json]        fetch the stored result
//	p4wn cancel -id JOB                      cancel a queued/running job
//	p4wn cluster status                      coordinator shard table
//
// submit retries transient failures — connection errors and 429/503
// backpressure (honoring Retry-After) — with exponential backoff and
// jitter; -retries bounds the attempts. Against a coordinator, -tenant
// names the fair-share tenant the job is accounted to. The same
// submit/status/result/cancel/trace commands work unchanged against a
// single daemon or a coordinator.
//
// Trace files ending in .pcap are written/read as libpcap captures
// (replayable with standard tooling); any other extension uses the
// repository's binary trace format.
//
// Every subcommand exits 2 with a one-line usage message on bad flags or
// stray arguments, 1 on runtime errors (3 for monitor anomalies). `lint`
// exits 1 on error-severity findings, and with -fail-on also when any
// information-flow leak's weighted probability reaches the threshold.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	p4wn "repro"
	"repro/internal/dut"
	"repro/internal/eval"
	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/p4c"
	"repro/internal/target"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	run, ok := commands[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "p4wn: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	run(args)
}

// commands maps each subcommand to its runner. Every runner parses its own
// flag set through parseFlags, so flag errors behave identically across
// subcommands: one usage line on stderr, exit status 2.
var commands = map[string]func(args []string){
	"list":        runList,
	"targets":     runTargets,
	"lint":        runLint,
	"profile":     runProfile,
	"adversarial": runAdversarial,
	"backtest":    runBacktest,
	"monitor":     runMonitor,
	"submit":      runSubmit,
	"status":      runStatus,
	"result":      runResult,
	"cancel":      runCancel,
	"trace":       runTrace,
	"cluster":     runCluster,
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: p4wn <list|targets|lint|profile|adversarial|backtest|monitor|submit|status|result|cancel|trace|cluster> [flags]")
}

// newFlagSet builds a subcommand flag set with the uniform error
// behaviour: its usage is the single synopsis line.
func newFlagSet(name, synopsis string) *flag.FlagSet {
	fs := flag.NewFlagSet("p4wn "+name, flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprintln(os.Stderr, "usage: p4wn "+synopsis) }
	return fs
}

// parseFlags applies the shared parse discipline: -h/-help exits 0 after
// the usage line; any other flag error exits 2 (the flag package has
// already printed the error and the usage line); stray positional
// arguments are rejected the same way.
func parseFlags(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "%s: unexpected argument %q\n", fs.Name(), fs.Arg(0))
		fs.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p4wn:", err)
	os.Exit(1)
}

func mustProgram(name string) p4wn.SystemMeta {
	if name == "" {
		fatal(fmt.Errorf("-prog required (see `p4wn list`)"))
	}
	m, ok := p4wn.LookupSystem(name)
	if !ok {
		fatal(fmt.Errorf("unknown program %q", name))
	}
	return m
}

// buildProgram resolves -prog / -file into a built program. When lenient is
// set, a -file program is compiled without reference validation so the lint
// verifier can report every problem instead of stopping at the first.
func buildProgram(name, file string, lenient bool) *p4wn.Program {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		parse := p4c.Parse
		if lenient {
			parse = p4c.ParseUnvalidated
		}
		prog, err := parse(string(src))
		if err != nil {
			fatal(err)
		}
		return prog
	}
	return mustProgram(name).Build()
}

// loadProgram resolves -prog / -file into a built program plus a workload
// generator for its oracle.
func loadProgram(name, file string, seed int64) (*p4wn.Program, p4wn.Oracle) {
	if file != "" {
		return buildProgram(name, file, false),
			p4wn.TraceOracle(p4wn.GenerateTraffic(p4wn.TrafficOptions{Seed: seed}))
	}
	m := mustProgram(name)
	return m.Build(), p4wn.TraceOracle(p4wn.GenerateTraffic(m.Workload(seed)))
}

// mustTargetModel validates a device-model name against the target
// registry. Unknown names follow the subcommand usage contract: one error
// line, the usage synopsis, exit status 2.
func mustTargetModel(fs *flag.FlagSet, name string) string {
	if _, err := target.Lookup(name); err != nil {
		fmt.Fprintf(os.Stderr, "p4wn: %v\n", err)
		fs.Usage()
		os.Exit(2)
	}
	return name
}

// runTargets lists the device models a profile/adversarial run can execute
// against, with each model's resource limits.
func runTargets(args []string) {
	fs := newFlagSet("targets", "targets")
	parseFlags(fs, args)
	var rows [][]string
	for _, m := range target.All() {
		rows = append(rows, []string{m.CanonicalName(), m.Limits(), m.Description})
	}
	fmt.Print(obs.Table([]string{"target", "limits", "description"}, rows))
}

func runList(args []string) {
	fs := newFlagSet("list", "list")
	parseFlags(fs, args)
	fmt.Printf("%-20s %6s %9s %s\n", "name", "LoC", "stateful", "structures")
	for _, m := range p4wn.Systems() {
		structs := ""
		if m.UsesHash {
			structs += "hash "
		}
		if m.UsesBloom {
			structs += "bloom "
		}
		if m.UsesSketch {
			structs += "sketch "
		}
		if m.DeepState {
			structs += "deep"
		}
		st := "-"
		if m.Stateful {
			st = "yes"
		}
		fmt.Printf("%-20s %6d %9s %s\n", m.Name, m.PaperLoC, st, structs)
	}
}

// runLint runs the static-analysis suite and prints every diagnostic with
// its block label.
//
// Exit-code contract (mirrored by lint_test.go): exit 2 on usage errors,
// exit 1 when any linted program has error-severity findings (malformed
// IR) — and, with -ifc, when any leak's weighted path probability reaches
// the -fail-on threshold. Leaks below the threshold (or with -fail-on
// unset) are warnings and exit 0, matching the rest of the lint passes.
func runLint(args []string) {
	fs := newFlagSet("lint", "lint (-prog name | -file prog.p4w | -all) [-deps] [-ifc] [-policy pol.json] [-weighted] [-fail-on p]")
	progName := fs.String("prog", "", "program name from `p4wn list`")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	all := fs.Bool("all", false, "lint every zoo program")
	deps := fs.Bool("deps", false, "print the state-dependency graph")
	ifcOn := fs.Bool("ifc", false, "run the information-flow pass against the program's inline policy")
	policyFile := fs.String("policy", "", "JSON information-flow policy merged over the inline one (implies -ifc)")
	weighted := fs.Bool("weighted", false, "weight ifc leaks with a quick-scale profile (implies -ifc)")
	failOn := fs.Float64("fail-on", 0, "exit non-zero when any leak probability reaches this threshold (implies -ifc -weighted)")
	parseFlags(fs, args)
	if *policyFile != "" || *weighted || *failOn > 0 {
		*ifcOn = true
	}
	if *failOn > 0 {
		*weighted = true
	}

	var extra *p4wn.SecPolicy
	if *policyFile != "" {
		pol, err := p4wn.LoadPolicy(*policyFile)
		if err != nil {
			fatal(err)
		}
		extra = pol
	}

	var progs []*p4wn.Program
	switch {
	case *all:
		for _, m := range p4wn.Systems() {
			progs = append(progs, m.Build())
		}
	case *progName != "" || *progFile != "":
		progs = append(progs, buildProgram(*progName, *progFile, true))
	default:
		fmt.Fprintln(os.Stderr, "p4wn lint: needs -prog, -file, or -all")
		fs.Usage()
		os.Exit(2)
	}
	errors, tripped := 0, false
	for _, prog := range progs {
		var r *p4wn.LintReport
		if *ifcOn {
			r = p4wn.LintWithPolicy(prog, extra)
		} else {
			r = p4wn.Lint(prog)
		}
		if *weighted && r.IFC != nil && r.IFC.HasLeaks() && !r.HasErrors() {
			// A quick-scale profile over the uniform header space weights
			// each leak by its witness path's rarest block — deterministic
			// and cheap enough for a lint gate.
			opt := eval.Quick().ProfileOptions()
			prof, err := p4wn.Profile(prog, nil, opt)
			if err != nil {
				fatal(err)
			}
			p4wn.WeightIFC(r.IFC, prof)
		}
		fmt.Print(r)
		if r.IFC != nil {
			printLeaks(prog, r.IFC)
			if *failOn > 0 && r.IFC.MaxP().Float() >= *failOn {
				tripped = true
			}
		}
		errors += r.Errors()
		if *deps && r.Deps != nil {
			fmt.Print(r.Deps)
		}
	}
	if errors > 0 || tripped {
		os.Exit(1)
	}
}

// printLeaks renders the ifc result as a ranked table (probability column
// only when a profile join happened).
func printLeaks(prog *p4wn.Program, res *p4wn.IFCResult) {
	fmt.Printf("ifc %s: %d leak(s)", prog.Name, len(res.Leaks))
	if mp := res.MaxP(); !mp.IsZero() {
		fmt.Printf(", max leak p %s", mp)
	}
	fmt.Println()
	for _, l := range res.Leaks {
		flow := "explicit"
		if l.Implicit {
			flow = "implicit"
		}
		p := "-"
		if l.Weighted {
			p = l.P.String()
		}
		fmt.Printf("  %-10s %s -> %s (%s) via %s\n",
			p, l.Source, l.Sink, flow, res.WitnessString(prog, l))
	}
}

func runProfile(args []string) {
	fs := newFlagSet("profile", "profile (-prog name | -file prog.p4w) [-target model] [-uniform] [-seed n] [-workers n] [-v] [-report out.json] [-hotblocks out.pprof] [-metrics-addr host:port] [-cpuprofile f] [-memprofile f]")
	progName := fs.String("prog", "", "program name from `p4wn list`")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	seed := fs.Int64("seed", 1, "random seed")
	targetName := fs.String("target", "", "device model to profile against (see `p4wn targets`; default idealized)")
	uniform := fs.Bool("uniform", false, "profile against the uniform header space instead of a synthetic trace")
	workers := fs.Int("workers", 0, "profiler parallelism; 0 selects GOMAXPROCS")
	verbose := fs.Bool("v", false, "stream per-iteration trace lines to stderr")
	reportPath := fs.String("report", "", "write the JSON run report to this path")
	hotPath := fs.String("hotblocks", "", "write the hot-block exploration profile (pprof format) to this path")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, expvar, and pprof on this address for the run")
	cpuProfile := fs.String("cpuprofile", "", "write a Go CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a Go heap profile to this path")
	parseFlags(fs, args)
	mustTargetModel(fs, *targetName)

	prog, oracle := loadProgram(*progName, *progFile, *seed)
	if *uniform {
		oracle = nil
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	opt := p4wn.ProfileOptions{Seed: *seed, Workers: *workers, Target: *targetName}
	if *verbose {
		opt.Tracer = obs.NewTracer(os.Stderr)
	}
	reg := obs.NewRegistry()
	opt.Registry = reg
	if *metricsAddr != "" {
		addr, closeSrv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer closeSrv()
		fmt.Fprintf(os.Stderr, "serving metrics at http://%s/metrics\n", addr)
	}

	prof, err := p4wn.Profile(prog, oracle, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(prof)

	rep := p4wn.Report(prof, opt)
	p4wn.AttachIFC(rep, prog, prof)
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.Summary())
	if *reportPath != "" {
		if err := obs.WriteJSONAtomic(*reportPath, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote run report to %s\n", *reportPath)
	}
	if *hotPath != "" {
		f, err := os.Create(*hotPath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteHotBlockPprof(f, prog.Name, rep.HotBlocks); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote hot-block profile to %s (inspect with `go tool pprof`)\n", *hotPath)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

func runAdversarial(args []string) {
	fs := newFlagSet("adversarial", "adversarial (-prog name | -file prog.p4w) -target label [-target-model model] [-out adv.pcap] [-seed n] [-seconds n] [-pps n]")
	progName := fs.String("prog", "", "program name from `p4wn list`")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	target := fs.String("target", "", "target code-block label")
	targetModel := fs.String("target-model", "", "device model to generate against (see `p4wn targets`)")
	out := fs.String("out", "", "output trace file")
	seed := fs.Int64("seed", 1, "random seed")
	seconds := fs.Int("seconds", 10, "amplified workload duration")
	pps := fs.Int("pps", 1000, "amplified workload rate")
	parseFlags(fs, args)
	mustTargetModel(fs, *targetModel)

	prog, _ := loadProgram(*progName, *progFile, *seed)
	if *target == "" {
		fmt.Fprintln(os.Stderr, "p4wn adversarial: -target required (a block label from `p4wn profile`)")
		fs.Usage()
		os.Exit(2)
	}
	adv, err := p4wn.Adversarial(prog, *target, p4wn.AdversarialOptions{Seed: *seed, Target: *targetModel})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d seed packets for %s/%s (validated=%v)\n",
		len(adv.Packets), prog.Name, *target, adv.Validated)
	fmt.Printf("  symbex %.3fs, solver %.3fs, havocing %.3fs\n",
		adv.Decomp.Symbex.Seconds(), adv.Decomp.Solver.Seconds(), adv.Decomp.Havoc.Seconds())
	if *out != "" {
		w := p4wn.Amplify(adv, *seconds, *pps)
		var werr error
		if strings.HasSuffix(*out, ".pcap") {
			werr = w.WritePcapFile(*out)
		} else {
			werr = w.WriteFile(*out)
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("wrote %d-packet amplified workload to %s\n", w.Len(), *out)
	}
}

func readTrace(traceFile string) *trace.Trace {
	var tr *trace.Trace
	var err error
	if strings.HasSuffix(traceFile, ".pcap") {
		tr, err = trace.ReadPcapFile(traceFile)
	} else {
		tr, err = trace.ReadFile(traceFile)
	}
	if err != nil {
		fatal(err)
	}
	return tr
}

func runBacktest(args []string) {
	fs := newFlagSet("backtest", "backtest (-prog name | -file prog.p4w) -trace file")
	progName := fs.String("prog", "", "program name from `p4wn list`")
	progFile := fs.String("file", "", "mini-language source file (alternative to -prog)")
	traceFile := fs.String("trace", "", "trace file to replay")
	parseFlags(fs, args)

	prog, _ := loadProgram(*progName, *progFile, 1)
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "p4wn backtest: -trace required")
		fs.Usage()
		os.Exit(2)
	}
	tr := readTrace(*traceFile)
	metrics := p4wn.Backtest(prog, tr)
	tot := metrics.Totals()
	fmt.Printf("replayed %d packets over %d virtual seconds on %s\n", tr.Len(), metrics.Seconds, prog.Name)
	fmt.Printf("  cpu punts: %d, digests: %d, recircs: %d, mirrors: %d, backend: %d, drops: %d\n",
		tot.CPUPkts, tot.Digests, tot.Recircs, tot.Mirrors, tot.BackendPkts, tot.Dropped)
	for port, kb := range tot.PortKB {
		if kb > 0 {
			fmt.Printf("  port %d: %.1f KB\n", port, kb)
		}
	}
	fmt.Println()
	fmt.Println(metrics.Render(map[string][]float64{
		"cpu/s":     dut.IntSeries(metrics.CPUPkts),
		"backend/s": dut.IntSeries(metrics.BackendPkts),
		"recirc/s":  dut.IntSeries(metrics.Recircs),
	}))
}

// runMonitor implements the §6 mitigation flow: build the expected profile,
// replay a trace with block counters attached, and report anomaly alarms.
func runMonitor(args []string) {
	fs := newFlagSet("monitor", "monitor -prog name -trace file [-seed n] [-workers n]")
	progName := fs.String("prog", "", "program name from `p4wn list`")
	traceFile := fs.String("trace", "", "trace file to replay")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "profiler parallelism; 0 selects GOMAXPROCS")
	parseFlags(fs, args)

	m := mustProgram(*progName)
	prog := m.Build()
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "p4wn monitor: -trace required")
		fs.Usage()
		os.Exit(2)
	}
	tr := readTrace(*traceFile)

	oracle := p4wn.TraceOracle(p4wn.GenerateTraffic(m.Workload(*seed)))
	prof, err := p4wn.Profile(prog, oracle, p4wn.ProfileOptions{Seed: *seed, Workers: *workers})
	if err != nil {
		fatal(err)
	}

	sw := p4wn.NewSwitch(prog)
	mon := mitigate.New(prof, mitigate.Options{})
	mon.Attach(sw)
	for i := range tr.Packets {
		sw.Process(&tr.Packets[i])
	}
	mon.Flush()

	alarms := mon.Alarms()
	fmt.Printf("monitored %d packets over %d windows: %d alarms\n",
		tr.Len(), mon.Windows(), len(alarms))
	for _, a := range alarms {
		fmt.Println(" ", a)
	}
	if len(alarms) > 0 {
		os.Exit(3) // distinct exit code for detected anomalies
	}
}
