// Command p4wnbench regenerates the paper's tables and figures and prints
// them as text, optionally writing each to a file.
//
//	p4wnbench -exp all -scale quick
//	p4wnbench -exp fig6a,fig10 -scale default -outdir results/
//	p4wnbench -exp all -scale quick -report bench.json
//
// With -report, a versioned JSON bench report (per-experiment wall times and
// statuses) is written atomically — the artifact CI uploads as
// BENCH_<date>.json to track performance trajectories across revisions.
//
// -workers sets the profiler's degree of parallelism for every experiment
// (0 = GOMAXPROCS). -workers-sweep replaces the experiment list with a
// scaling sweep: each sweep program is profiled at 1, 2, 4, and GOMAXPROCS
// workers, one report row per (program, worker count), so BENCH_*.json
// records the scaling curve. The sweep also asserts that every worker
// count renders a byte-identical profile to workers=1 — a mismatch fails
// the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	p4wn "repro"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/p4c"
	"repro/internal/target"
)

type experiment struct {
	name string
	run  func(eval.Config) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](f func(eval.Config) (T, error)) func(eval.Config) (fmt.Stringer, error) {
	return func(c eval.Config) (fmt.Stringer, error) { return f(c) }
}

var experiments = []experiment{
	{"table1", wrap(eval.Table1)},
	{"fig6a", wrap(eval.Figure6a)},
	{"fig6b", wrap(eval.Figure6b)},
	{"fig6c", wrap(eval.Figure6c)},
	{"fig6d", wrap(eval.Figure6d)},
	{"fig6e", wrap(eval.Figure6e)},
	{"fig6f", wrap(eval.Figure6f)},
	{"fig7", wrap(eval.Figure7)},
	{"fig8", wrap(eval.Figure8)},
	{"fig9", wrap(eval.Figure9)},
	{"fig10", wrap(eval.Figure10)},
	{"fig11", wrap(eval.Figure11)},
	{"fig12", wrap(eval.Figure12)},
	{"fig13", wrap(eval.Figure13)},
	{"accuracy", wrap(eval.AccuracyVsExhaustive)},
	{"offload", wrap(eval.OffloadCaseStudy)},
	{"ablations", wrap(eval.Ablations)},
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments, or 'all'")
	scale := flag.String("scale", "quick", "quick | default | full")
	outdir := flag.String("outdir", "", "write each experiment's output to <outdir>/<name>.txt")
	seed := flag.Int64("seed", 1, "random seed")
	reportPath := flag.String("report", "", "write the JSON bench report to this path")
	workers := flag.Int("workers", 0, "profiler parallelism for every experiment (0 = GOMAXPROCS)")
	targetName := flag.String("target", "", "device model every experiment runs against (idealized, tofino, ebpf)")
	workersSweep := flag.Bool("workers-sweep", false, "run the worker-scaling sweep instead of the experiment list")
	flag.Parse()

	var cfg eval.Config
	switch *scale {
	case "quick":
		cfg = eval.Quick()
	case "default":
		cfg = eval.DefaultConfig()
	case "full":
		cfg = eval.Full()
	default:
		fmt.Fprintf(os.Stderr, "p4wnbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	if _, err := target.Lookup(*targetName); err != nil {
		fmt.Fprintf(os.Stderr, "p4wnbench: %v\n", err)
		os.Exit(2)
	}
	cfg.Target = *targetName

	if *workersSweep {
		os.Exit(runWorkersSweep(cfg, *scale, *seed, *reportPath))
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, n := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	rep := obs.NewBenchReport(*scale, *seed, cfg.Target)
	benchStart := time.Now()
	failed := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.run(cfg)
		elapsed := time.Since(start)
		er := obs.ExperimentResult{Name: e.name, Seconds: elapsed.Seconds(), OK: err == nil}
		if err != nil {
			er.Error = err.Error()
			rep.Experiments = append(rep.Experiments, er)
			fmt.Fprintf(os.Stderr, "p4wnbench: %s failed: %v\n", e.name, err)
			failed++
			continue
		}
		rep.Experiments = append(rep.Experiments, er)
		text := res.String()
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, elapsed.Seconds(), text)
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "p4wnbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, e.name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "p4wnbench:", err)
				os.Exit(1)
			}
		}
	}
	rep.Metrics = map[string]float64{
		"wall_sec":    time.Since(benchStart).Seconds(),
		"experiments": float64(len(rep.Experiments)),
		"failed":      float64(failed),
	}
	fmt.Print(rep.Summary())
	if *reportPath != "" {
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		if err := obs.WriteJSONAtomic(*reportPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "p4wnbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote bench report to %s\n", *reportPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// sweepProgram is one subject of the worker-scaling sweep: a zoo system or
// a mini-language source file from examples/programs/. The oracle is a
// factory, not an instance — each (program, worker count) run gets a fresh
// oracle so no run inherits a warm query cache from the previous count.
type sweepProgram struct {
	name   string
	prog   *p4wn.Program
	oracle func() p4wn.Oracle
}

// sweepPrograms assembles the sweep subjects: the first two zoo systems of
// the evaluation plus every example program shipped in examples/programs/.
func sweepPrograms(seed int64) []sweepProgram {
	var out []sweepProgram
	zoo := eval.S1toS11()
	if len(zoo) > 2 {
		zoo = zoo[:2]
	}
	for _, m := range zoo {
		m := m
		out = append(out, sweepProgram{
			name: m.Name,
			prog: m.Build(),
			oracle: func() p4wn.Oracle {
				return p4wn.TraceOracle(p4wn.GenerateTraffic(m.Workload(seed)))
			},
		})
	}
	files, _ := filepath.Glob(filepath.Join("examples", "programs", "*.p4w"))
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		prog, err := p4c.Parse(string(src))
		if err != nil {
			continue
		}
		out = append(out, sweepProgram{
			name: strings.TrimSuffix(filepath.Base(f), ".p4w"),
			prog: prog,
			oracle: func() p4wn.Oracle {
				return p4wn.TraceOracle(p4wn.GenerateTraffic(p4wn.TrafficOptions{Seed: seed}))
			},
		})
	}
	return out
}

// sweepCounts returns the worker counts to measure: 1, 2, 4, GOMAXPROCS,
// deduplicated and sorted (on a 2-core box that is 1, 2, 4).
func sweepCounts() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// runWorkersSweep profiles each sweep program once per worker count,
// emitting one bench-report row per (program, count) and checking that the
// rendered profile is byte-identical to the workers=1 run. Returns the
// process exit code.
func runWorkersSweep(cfg eval.Config, scale string, seed int64, reportPath string) int {
	rep := obs.NewBenchReport(scale+"/workers-sweep", seed, cfg.Target)
	rep.Metrics = map[string]float64{"gomaxprocs": float64(runtime.GOMAXPROCS(0))}
	benchStart := time.Now()
	counts := sweepCounts()
	failed := 0
	for _, sp := range sweepPrograms(seed) {
		var refText string
		var base float64
		for _, w := range counts {
			opt := p4wn.ProfileOptions{
				Seed:         seed,
				Timeout:      cfg.ProfileTimeout,
				SampleBudget: cfg.SampleBudget,
				MaxIters:     cfg.ProfileMaxIters,
				Workers:      w,
				Target:       cfg.Target,
			}
			oracle := sp.oracle()
			start := time.Now()
			prof, err := p4wn.Profile(sp.prog, oracle, opt)
			elapsed := time.Since(start)
			er := obs.ExperimentResult{
				Name:    fmt.Sprintf("workers/%s/w%d", sp.name, w),
				Seconds: elapsed.Seconds(),
				OK:      err == nil,
			}
			switch {
			case err != nil:
				er.Error = err.Error()
			case w == counts[0]:
				refText = prof.String()
				base = elapsed.Seconds()
			case prof.String() != refText:
				er.OK = false
				er.Error = fmt.Sprintf("profile output differs from workers=%d", counts[0])
			}
			if !er.OK {
				fmt.Fprintf(os.Stderr, "p4wnbench: %s failed: %s\n", er.Name, er.Error)
				failed++
			} else if base > 0 && elapsed.Seconds() > 0 {
				rep.Metrics[fmt.Sprintf("speedup_%s_w%d", sp.name, w)] = base / elapsed.Seconds()
			}
			rep.Experiments = append(rep.Experiments, er)
			fmt.Printf("workers/%-24s w=%d  %.2fs  ok=%v\n", sp.name, w, elapsed.Seconds(), er.OK)
		}
	}
	rep.Metrics["wall_sec"] = time.Since(benchStart).Seconds()
	rep.Metrics["failed"] = float64(failed)
	fmt.Print(rep.Summary())
	if reportPath != "" {
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		if err := obs.WriteJSONAtomic(reportPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "p4wnbench:", err)
			return 1
		}
		fmt.Printf("wrote bench report to %s\n", reportPath)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
