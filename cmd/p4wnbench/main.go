// Command p4wnbench regenerates the paper's tables and figures and prints
// them as text, optionally writing each to a file.
//
//	p4wnbench -exp all -scale quick
//	p4wnbench -exp fig6a,fig10 -scale default -outdir results/
//	p4wnbench -exp all -scale quick -report bench.json
//
// With -report, a versioned JSON bench report (per-experiment wall times and
// statuses) is written atomically — the artifact CI uploads as
// BENCH_<date>.json to track performance trajectories across revisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
)

type experiment struct {
	name string
	run  func(eval.Config) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](f func(eval.Config) (T, error)) func(eval.Config) (fmt.Stringer, error) {
	return func(c eval.Config) (fmt.Stringer, error) { return f(c) }
}

var experiments = []experiment{
	{"table1", wrap(eval.Table1)},
	{"fig6a", wrap(eval.Figure6a)},
	{"fig6b", wrap(eval.Figure6b)},
	{"fig6c", wrap(eval.Figure6c)},
	{"fig6d", wrap(eval.Figure6d)},
	{"fig6e", wrap(eval.Figure6e)},
	{"fig6f", wrap(eval.Figure6f)},
	{"fig7", wrap(eval.Figure7)},
	{"fig8", wrap(eval.Figure8)},
	{"fig9", wrap(eval.Figure9)},
	{"fig10", wrap(eval.Figure10)},
	{"fig11", wrap(eval.Figure11)},
	{"fig12", wrap(eval.Figure12)},
	{"fig13", wrap(eval.Figure13)},
	{"accuracy", wrap(eval.AccuracyVsExhaustive)},
	{"offload", wrap(eval.OffloadCaseStudy)},
	{"ablations", wrap(eval.Ablations)},
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments, or 'all'")
	scale := flag.String("scale", "quick", "quick | default | full")
	outdir := flag.String("outdir", "", "write each experiment's output to <outdir>/<name>.txt")
	seed := flag.Int64("seed", 1, "random seed")
	reportPath := flag.String("report", "", "write the JSON bench report to this path")
	flag.Parse()

	var cfg eval.Config
	switch *scale {
	case "quick":
		cfg = eval.Quick()
	case "default":
		cfg = eval.DefaultConfig()
	case "full":
		cfg = eval.Full()
	default:
		fmt.Fprintf(os.Stderr, "p4wnbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, n := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	rep := obs.NewBenchReport(*scale, *seed)
	benchStart := time.Now()
	failed := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.run(cfg)
		elapsed := time.Since(start)
		er := obs.ExperimentResult{Name: e.name, Seconds: elapsed.Seconds(), OK: err == nil}
		if err != nil {
			er.Error = err.Error()
			rep.Experiments = append(rep.Experiments, er)
			fmt.Fprintf(os.Stderr, "p4wnbench: %s failed: %v\n", e.name, err)
			failed++
			continue
		}
		rep.Experiments = append(rep.Experiments, er)
		text := res.String()
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, elapsed.Seconds(), text)
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "p4wnbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, e.name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "p4wnbench:", err)
				os.Exit(1)
			}
		}
	}
	rep.Metrics = map[string]float64{
		"wall_sec":    time.Since(benchStart).Seconds(),
		"experiments": float64(len(rep.Experiments)),
		"failed":      float64(failed),
	}
	fmt.Print(rep.Summary())
	if *reportPath != "" {
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		if err := obs.WriteJSONAtomic(*reportPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "p4wnbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote bench report to %s\n", *reportPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
