// Command p4wnd is the P4wn profiling daemon: a long-running service that
// accepts profiling and adversarial-generation jobs over a JSON HTTP API,
// runs them through the shared engine with a bounded priority queue, and
// serves results from a content-addressed store so identical submissions
// never recompute.
//
//	p4wnd -addr :8471 -store results/store -log-format json
//
// API (see `p4wn submit|status|result|cancel|trace` for the client side):
//
//	POST   /v1/jobs             submit a job spec (429 + Retry-After on a
//	                            full queue; 200 when served from the store)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result stored result JSON (202 while running)
//	GET    /v1/jobs/{id}/events live progress stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/healthz          serving | draining
//	GET    /metrics             Prometheus text exposition (+ expvar, pprof)
//	GET    /debug/trace/{id}    job span tree as Chrome trace_event JSON
//
// Logs are structured (log/slog): -log-format selects text or json,
// -log-level the threshold, and the P4WND_LOG environment variable supplies
// defaults for both as "format" or "format:level" (e.g. "json:debug") when
// the flags are not set. Every job-scoped record carries job_id and
// trace_id, so log lines join against /debug/trace exports.
//
// SIGTERM/SIGINT drains gracefully: intake stops (submissions get 503),
// in-flight and queued jobs finish and persist their results, then the
// process exits 0. A second signal — or -drain-timeout expiring — cancels
// the remaining jobs and exits nonzero.
//
// # Coordinator mode
//
//	p4wnd -coordinator -addr :8470 -workers 127.0.0.1:8471,127.0.0.1:8472
//
// With -coordinator the process runs no engine of its own: it shards
// submissions across the listed worker daemons by consistent hashing on the
// content-addressed job ID, answers repeats from an in-process result LRU
// or the ring owner's store, steals work from overloaded shards onto idle
// ones, and enforces per-tenant quotas with weighted-fair dispatch
// (-tenant-quota, -tenant-weights "alice=3,bob=1"). The job API is
// identical to a single daemon's, so p4wn needs no new flags to use it;
// GET /v1/cluster/status adds the shard table (`p4wn cluster status`). In
// this mode -workers takes the comma-separated worker addresses instead of
// the per-job profiler parallelism. /healthz and /readyz report liveness
// and readiness in both modes; a draining process fails /readyz first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// envLogDefaults parses P4WND_LOG ("format" or "format:level") into
// defaults for the -log-format and -log-level flags.
func envLogDefaults() (format, level string) {
	format, level = "text", "info"
	env := strings.TrimSpace(os.Getenv("P4WND_LOG"))
	if env == "" {
		return format, level
	}
	f, l, ok := strings.Cut(env, ":")
	if f = strings.TrimSpace(f); f != "" {
		format = f
	}
	if ok {
		if l = strings.TrimSpace(l); l != "" {
			level = l
		}
	}
	return format, level
}

// buildLogger resolves the format/level pair into a slog.Logger writing to
// stderr. Unknown values are reported, not defaulted silently.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

func main() {
	fs := flag.NewFlagSet("p4wnd", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p4wnd [-addr host:port] [-store dir] [-queue n] [-jobs n] [-workers n] [-job-timeout d] [-max-job-timeout d] [-drain-timeout d] [-store-cap n] [-max-paths n] [-replay-cap n] [-log-format text|json] [-log-level debug|info|warn|error]")
		fmt.Fprintln(os.Stderr, "       p4wnd -coordinator -workers addr1,addr2,... [-addr host:port] [-tenant-quota n] [-tenant-weights a=3,b=1] [-queue n] [-dispatchers n] [-steal-load n] [-cache-cap n] [-heartbeat d] [-drain-timeout d]")
	}
	defFormat, defLevel := envLogDefaults()
	addr := fs.String("addr", "127.0.0.1:8471", "listen address")
	storeDir := fs.String("store", "results/store", "content-addressed result store directory")
	storeCap := fs.Int("store-cap", 256, "in-memory result cache entries")
	queueDepth := fs.Int("queue", 64, "queued-job bound (past it submissions get 429)")
	jobWorkers := fs.Int("jobs", 2, "jobs run concurrently")
	workersFlag := fs.String("workers", "0", "per-job profiler parallelism (0 = GOMAXPROCS); with -coordinator, the comma-separated worker daemon addresses")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "default per-job wall-clock bound")
	maxJobTimeout := fs.Duration("max-job-timeout", 30*time.Minute, "clamp on requested job timeouts")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-drain bound on shutdown")
	maxPaths := fs.Int("max-paths", 1<<20, "per-job MaxPaths quota (<0 disables)")
	replayCap := fs.Int("replay-cap", 4096, "per-job SSE replay buffer bound in lines")
	coordinator := fs.Bool("coordinator", false, "run as a fleet coordinator over -workers instead of an engine daemon")
	tenantQuota := fs.Int("tenant-quota", 32, "coordinator: pending-submission bound per tenant (past it: 429)")
	tenantWeights := fs.String("tenant-weights", "", "coordinator: fair-share weights as name=weight,... (unlisted tenants weigh 1)")
	dispatchers := fs.Int("dispatchers", 0, "coordinator: fleet-wide in-flight job bound (0 = 2 per worker)")
	stealLoad := fs.Int("steal-load", 4, "coordinator: in-flight count past which an idle shard steals the owner's job")
	cacheCap := fs.Int("cache-cap", 128, "coordinator: hot-result LRU entries")
	heartbeat := fs.Duration("heartbeat", time.Second, "coordinator: shard stats poll interval")
	logFormat := fs.String("log-format", defFormat, "log output format: text or json (default from P4WND_LOG)")
	logLevel := fs.String("log-level", defLevel, "log threshold: debug, info, warn, or error")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p4wnd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		os.Exit(2)
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4wnd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err.Error())
		os.Exit(1)
	}

	if *coordinator {
		weights, err := parseWeights(*tenantWeights)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4wnd: -tenant-weights: %v\n", err)
			os.Exit(2)
		}
		runCoordinator(logger, coordinatorOpts{
			addr:         *addr,
			workers:      splitWorkers(*workersFlag),
			queueDepth:   *queueDepth,
			tenantQuota:  *tenantQuota,
			weights:      weights,
			dispatchers:  *dispatchers,
			stealLoad:    *stealLoad,
			cacheCap:     *cacheCap,
			heartbeat:    *heartbeat,
			drainTimeout: *drainTimeout,
		})
		return
	}
	profWorkers, err := strconv.Atoi(strings.TrimSpace(*workersFlag))
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4wnd: -workers: %q is not a number (worker-address lists need -coordinator)\n", *workersFlag)
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		StoreDir:          *storeDir,
		StoreCap:          *storeCap,
		QueueDepth:        *queueDepth,
		JobWorkers:        *jobWorkers,
		ProfWorkers:       profWorkers,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxJobTimeout,
		MaxPathsQuota:     *maxPaths,
		ReplayCap:         *replayCap,
		Logger:            logger,
	})
	if err != nil {
		fatal("start server", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal("serve http", err)
		}
	}()
	logger.Info("serving", "addr", "http://"+ln.Addr().String(),
		"store", srv.Store().Dir(), "queue", *queueDepth, "job_workers", *jobWorkers)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	<-sigCtx.Done()
	stop() // a second signal kills the process the default way
	logger.Info("draining: no new jobs; finishing in-flight work",
		"bound", drainTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	// Shut the listener down after the drain so status polls keep working
	// while jobs finish.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	httpSrv.Shutdown(httpCtx)
	if drainErr != nil {
		logger.Error("drain incomplete", "error", drainErr.Error())
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// splitWorkers turns the -coordinator form of -workers into an address list.
func splitWorkers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" && part != "0" {
			out = append(out, part)
		}
	}
	return out
}

// parseWeights parses -tenant-weights ("alice=3,bob=1.5").
func parseWeights(s string) (map[string]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("%q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("%q: weight must be a positive number", part)
		}
		out[strings.TrimSpace(name)] = w
	}
	return out, nil
}

type coordinatorOpts struct {
	addr         string
	workers      []string
	queueDepth   int
	tenantQuota  int
	weights      map[string]float64
	dispatchers  int
	stealLoad    int
	cacheCap     int
	heartbeat    time.Duration
	drainTimeout time.Duration
}

// runCoordinator is the -coordinator main loop: same listener and signal
// lifecycle as the daemon, with the cluster coordinator in place of the
// engine server.
func runCoordinator(logger *slog.Logger, opts coordinatorOpts) {
	if len(opts.workers) == 0 {
		fmt.Fprintln(os.Stderr, "p4wnd: -coordinator needs -workers addr1,addr2,...")
		os.Exit(2)
	}
	coord, err := cluster.New(cluster.Config{
		Workers:        opts.workers,
		TenantQuota:    opts.tenantQuota,
		QueueDepth:     opts.queueDepth,
		TenantWeights:  opts.weights,
		Dispatchers:    opts.dispatchers,
		CacheCap:       opts.cacheCap,
		StealLoad:      opts.stealLoad,
		HeartbeatEvery: opts.heartbeat,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("start coordinator", "error", err.Error())
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		logger.Error("listen", "error", err.Error())
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("serve http", "error", err.Error())
			os.Exit(1)
		}
	}()
	logger.Info("coordinating", "addr", "http://"+ln.Addr().String(),
		"workers", strings.Join(coord.Workers(), ","))

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	<-sigCtx.Done()
	stop()
	logger.Info("draining: no new jobs; following in-flight forwards",
		"bound", opts.drainTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	drainErr := coord.Drain(drainCtx)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	httpSrv.Shutdown(httpCtx)
	if drainErr != nil {
		logger.Error("drain incomplete", "error", drainErr.Error())
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
