// Command p4wnd is the P4wn profiling daemon: a long-running service that
// accepts profiling and adversarial-generation jobs over a JSON HTTP API,
// runs them through the shared engine with a bounded priority queue, and
// serves results from a content-addressed store so identical submissions
// never recompute.
//
//	p4wnd -addr :8471 -store results/store
//
// API (see `p4wn submit|status|result|cancel` for the client side):
//
//	POST   /v1/jobs             submit a job spec (429 + Retry-After on a
//	                            full queue; 200 when served from the store)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result stored result JSON (202 while running)
//	GET    /v1/jobs/{id}/events live progress stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/healthz          serving | draining
//	GET    /metrics             registry snapshot (+ expvar, pprof)
//
// SIGTERM/SIGINT drains gracefully: intake stops (submissions get 503),
// in-flight and queued jobs finish and persist their results, then the
// process exits 0. A second signal — or -drain-timeout expiring — cancels
// the remaining jobs and exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("p4wnd: ")

	fs := flag.NewFlagSet("p4wnd", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p4wnd [-addr host:port] [-store dir] [-queue n] [-jobs n] [-workers n] [-job-timeout d] [-max-job-timeout d] [-drain-timeout d] [-store-cap n] [-max-paths n]")
	}
	addr := fs.String("addr", "127.0.0.1:8471", "listen address")
	storeDir := fs.String("store", "results/store", "content-addressed result store directory")
	storeCap := fs.Int("store-cap", 256, "in-memory result cache entries")
	queueDepth := fs.Int("queue", 64, "queued-job bound (past it submissions get 429)")
	jobWorkers := fs.Int("jobs", 2, "jobs run concurrently")
	profWorkers := fs.Int("workers", 0, "per-job profiler parallelism (0 = GOMAXPROCS)")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "default per-job wall-clock bound")
	maxJobTimeout := fs.Duration("max-job-timeout", 30*time.Minute, "clamp on requested job timeouts")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-drain bound on shutdown")
	maxPaths := fs.Int("max-paths", 1<<20, "per-job MaxPaths quota (<0 disables)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p4wnd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		StoreDir:          *storeDir,
		StoreCap:          *storeCap,
		QueueDepth:        *queueDepth,
		JobWorkers:        *jobWorkers,
		ProfWorkers:       *profWorkers,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxJobTimeout,
		MaxPathsQuota:     *maxPaths,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("serving on http://%s (store %s, queue %d, %d job workers)",
		ln.Addr(), srv.Store().Dir(), *queueDepth, *jobWorkers)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	<-sigCtx.Done()
	stop() // a second signal kills the process the default way
	log.Printf("draining (bound %s): no new jobs; finishing in-flight work", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	// Shut the listener down after the drain so status polls keep working
	// while jobs finish.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	httpSrv.Shutdown(httpCtx)
	if drainErr != nil {
		log.Printf("drain incomplete: %v", drainErr)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
