// Command promlint checks a Prometheus text exposition for format errors:
// metric/label name syntax, HELP/TYPE placement, duplicate series, and
// histogram invariants (cumulative buckets, +Inf, _count agreement).
//
//	promlint http://127.0.0.1:8471/metrics   fetch and lint (also checks
//	                                         the Content-Type header)
//	promlint metrics.txt                     lint a file
//	promlint -                               lint stdin
//
// Exit status 0 when the exposition is clean, 1 when any finding is
// reported, 2 on usage or I/O errors. CI runs it against a booted p4wnd
// so /metrics regressions fail the serve-smoke job.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: promlint <url | file | ->")
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	data, err := read(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	errs := obs.LintPrometheus(data)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "promlint:", e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d finding(s)\n", len(errs))
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}

// read resolves the exposition source: an http(s) URL (which must answer
// with the Prometheus text content type), "-" for stdin, else a file path.
func read(src string) ([]byte, error) {
	if src == "-" {
		return io.ReadAll(os.Stdin)
	}
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", src, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
			return nil, fmt.Errorf("%s: content type %q, want %q", src, ct, obs.PrometheusContentType)
		}
		return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	}
	return os.ReadFile(src)
}
