// Package p4wn is the public facade of the P4wn reproduction: a
// probabilistic profiler for stateful data-plane programs with an
// adversarial test generator and a backtesting engine, reimplementing
// "Probabilistic Profiling of Stateful Data Planes for Adversarial Testing"
// (ASPLOS 2021) in pure Go.
//
// Typical use:
//
//	prog := p4wn.System("Blink (S5)").Build()
//	oracle := p4wn.TraceOracle(p4wn.GenerateTraffic(p4wn.TrafficOptions{Seed: 1}))
//	profile, _ := p4wn.Profile(prog, oracle, p4wn.ProfileOptions{Seed: 1})
//	rare := profile.Nodes[0] // lowest-probability code block
//	adv, _ := p4wn.Adversarial(prog, rare.Label, p4wn.AdversarialOptions{})
//	metrics := p4wn.Backtest(prog, p4wn.Amplify(adv, 10, 1000))
package p4wn

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/programs"
	"repro/internal/testgen"
	"repro/internal/trace"
)

// Re-exported building blocks. The ir package's builder functions (ir.F,
// ir.C, ir.If2, ...) are used directly for custom program construction; see
// examples/quickstart.
type (
	// Program is a built data-plane program.
	Program = ir.Program
	// ProfileOptions tunes the profiler (see core.Options).
	ProfileOptions = core.Options
	// ProfileResult is a probabilistic profile, lowest-probability blocks
	// first.
	ProfileResult = core.Profile
	// Oracle answers traffic-composition queries.
	Oracle = dist.Oracle
	// TrafficOptions parameterizes the synthetic workload generator.
	TrafficOptions = trace.GenOptions
	// Traffic is a packet trace.
	Traffic = trace.Trace
	// AdversarialOptions tunes test-sequence generation.
	AdversarialOptions = testgen.Options
	// AdversarialTrace is a generated adversarial packet sequence.
	AdversarialTrace = testgen.AdvTrace
	// Metrics is a backtesting time series.
	Metrics = dut.Metrics
	// SystemMeta describes one program-zoo entry.
	SystemMeta = programs.Meta
	// LintReport is the combined result of the static-analysis passes.
	LintReport = analysis.Report
	// SecPolicy is an information-flow policy: secret sources and public
	// sinks (declared inline via the mini-language's `policy` block, on a
	// zoo builder, or loaded from JSON with LoadPolicy).
	SecPolicy = ir.SecPolicy
	// IFCResult is the information-flow pass's structured output: every
	// secret-to-sink leak with its witness chain and probability weight.
	IFCResult = analysis.IFCResult
	// RunReport is the versioned machine-readable artifact of one profiling
	// run (schema_version, options, convergence trajectory, stage timings,
	// final profile, metrics).
	RunReport = obs.Report
	// Tracer receives structured run telemetry; wire one into
	// ProfileOptions.Tracer (nil disables tracing at zero cost).
	Tracer = obs.Tracer
)

// Systems lists the evaluation program zoo (Vera's stateless set, S1–S15,
// and the §6 port-knocking NF).
func Systems() []SystemMeta { return programs.All() }

// System returns a zoo entry by its paper name (e.g. "Blink (S5)").
// It panics on unknown names; use LookupSystem to probe.
func System(name string) SystemMeta {
	m, ok := programs.ByName(name)
	if !ok {
		panic(fmt.Sprintf("p4wn: unknown system %q (see p4wn.Systems())", name))
	}
	return m
}

// LookupSystem returns a zoo entry by name.
func LookupSystem(name string) (SystemMeta, bool) { return programs.ByName(name) }

// Profile computes the probabilistic profile of a program: the steady-state
// per-packet probability of every code block, via symbolic execution with
// model counting, telescoping, greybox data-store analysis, and a concrete
// sampling fallback. A nil oracle profiles against the uniform header space.
func Profile(prog *Program, oracle Oracle, opt ProfileOptions) (*ProfileResult, error) {
	return core.ProbProf(prog, oracle, opt)
}

// Report converts a finished profile into the versioned run report; pass the
// same options the profile was computed with so they are recorded.
func Report(prof *ProfileResult, opt ProfileOptions) *RunReport {
	return core.NewReport(prof, opt)
}

// Lint runs the static-analysis suite over a built program: the IR
// verifier (structured well-formedness diagnostics), CFG reachability,
// def-use linting, and interval-based dead-branch detection. The report's
// PruneSet is what the profiler skips when pruning is enabled.
func Lint(prog *Program) *LintReport { return analysis.Analyze(prog) }

// LintWithPolicy runs the full lint suite with an extra information-flow
// policy merged over the program's inline one; the ifc pass runs when the
// merge is non-empty and its structured result lands in LintReport.IFC.
func LintWithPolicy(prog *Program, extra *SecPolicy) *LintReport {
	return analysis.AnalyzeWithPolicy(prog, extra)
}

// LoadPolicy reads an information-flow policy from a JSON file
// ({"secrets": [{"kind","name"}, ...], "sinks": [...]}).
func LoadPolicy(path string) (*SecPolicy, error) { return analysis.LoadPolicy(path) }

// WeightIFC ranks an information-flow result against a finished profile:
// each leak is weighted by the rarest block on its witness chain and leaks
// re-sort most-probable first.
func WeightIFC(res *IFCResult, prof *ProfileResult) { core.WeightIFC(res, prof) }

// AttachIFC runs the information-flow pass over a profiled program (when
// it declares an inline policy), weights the leaks against the profile,
// and attaches the summary block to the run report.
func AttachIFC(rep *RunReport, prog *Program, prof *ProfileResult) {
	core.AttachIFC(rep, prog, prof)
}

// GenerateTraffic synthesizes a CAIDA-like workload.
func GenerateTraffic(opt TrafficOptions) *Traffic { return trace.Generate(opt) }

// TraceOracle pins a traffic trace and answers the profiler's interactive
// queries from it (marginal distributions, pair-equality ratios), caching
// results.
func TraceOracle(tr *Traffic) Oracle { return trace.NewQueryProcessor(tr) }

// StaticOracle builds an operator-specified traffic profile.
func StaticOracle() *dist.Profile { return dist.NewProfile() }

// Adversarial generates a concrete packet sequence that exercises the code
// block with the given label.
func Adversarial(prog *Program, label string, opt AdversarialOptions) (*AdversarialTrace, error) {
	node := prog.NodeByLabel(label)
	if node == nil {
		return nil, fmt.Errorf("p4wn: program %q has no block labeled %q", prog.Name, label)
	}
	return testgen.Generate(prog, node.ID, opt)
}

// Amplify expands an adversarial seed sequence into a sustained workload of
// the given duration and rate, rotating fresh key material per cycle where
// that is what sustains the attack.
func Amplify(adv *AdversarialTrace, seconds, pps int) *Traffic {
	return testgen.WorkloadFor(adv, seconds, pps)
}

// Backtest replays a trace through a fresh software switch and returns
// per-second metrics (port traffic, CPU punts, digests, recirculations,
// backend load).
func Backtest(prog *Program, tr *Traffic) *Metrics {
	return dut.New(prog, dut.Config{}).Replay(tr)
}

// NewSwitch builds a standalone software switch for custom experiments.
func NewSwitch(prog *Program) *dut.Switch { return dut.New(prog, dut.Config{}) }
